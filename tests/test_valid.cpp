// Tests for the differential validation subsystem: invariant checking,
// fault-injection self-tests, auto-shrinking, corpus round-trip/replay and
// campaign determinism. The committed corpus under tests/corpus/ is
// replayed here as a parameterized regression suite.
#include "valid/validation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "config/samples.hpp"
#include "config/serialization.hpp"
#include "gen/industrial.hpp"
#include "valid/campaign.hpp"
#include "valid/checkpoint.hpp"
#include "valid/corpus.hpp"
#include "valid/incremental_check.hpp"
#include "valid/shrink.hpp"

#ifndef AFDX_REPO_ROOT
#define AFDX_REPO_ROOT "."
#endif

namespace afdx::valid {
namespace {

namespace fs = std::filesystem;

/// A small industrial configuration the fault/shrink tests iterate on
/// quickly.
TrafficConfig tiny_industrial(std::uint64_t seed = 5) {
  gen::IndustrialOptions o;
  o.seed = seed;
  o.switch_count = 3;
  o.end_system_count = 8;
  o.vl_count = 10;
  o.multicast_fraction = 0.3;
  return gen::industrial_config(o);
}

/// Check options tuned for test speed: tiny schedule battery.
CheckOptions fast_check() {
  CheckOptions c;
  c.schedules.random_schedules = 1;
  c.schedules.adversarial_stride = 5;
  return c;
}

fs::path fresh_temp_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("afdx_valid_") + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Campaign, SpecForIsDeterministic) {
  const GridOptions grid;
  for (std::size_t i = 0; i < 16; ++i) {
    const CampaignSpec a = spec_for(grid, 42, i);
    const CampaignSpec b = spec_for(grid, 42, i);
    EXPECT_EQ(a.gen.seed, b.gen.seed);
    EXPECT_EQ(a.gen.vl_count, b.gen.vl_count);
    EXPECT_EQ(a.gen.switch_count, b.gen.switch_count);
    EXPECT_EQ(a.gen.min_bag_ms, b.gen.min_bag_ms);
    EXPECT_EQ(a.gen.max_frame_bytes, b.gen.max_frame_bytes);
  }
}

TEST(Campaign, SpecForDrawsFromTheGridAndVariesAcrossIndices) {
  const GridOptions grid;
  std::set<int> vl_counts_seen;
  for (std::size_t i = 0; i < 64; ++i) {
    const CampaignSpec spec = spec_for(grid, 7, i);
    EXPECT_NE(std::find(grid.vl_counts.begin(), grid.vl_counts.end(),
                        spec.gen.vl_count),
              grid.vl_counts.end());
    EXPECT_NE(std::find(grid.max_frame_bytes.begin(),
                        grid.max_frame_bytes.end(), spec.gen.max_frame_bytes),
              grid.max_frame_bytes.end());
    EXPECT_LE(spec.gen.min_bag_ms, spec.gen.max_bag_ms);
    vl_counts_seen.insert(spec.gen.vl_count);
  }
  // 64 draws over a 3-value axis must hit more than one value.
  EXPECT_GT(vl_counts_seen.size(), 1u);
}

TEST(CheckConfig, SampleConfigIsClean) {
  const CheckResult r = check_config(config::sample_config(), fast_check());
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().describe());
  EXPECT_EQ(r.paths, 5u);
  EXPECT_GT(r.schedules_simulated, 0u);
  // Soundness in pessimism terms: no analytic bound below a realized delay.
  EXPECT_GE(r.wcnc.min, 1.0);
  EXPECT_GE(r.trajectory.min, 1.0);
  EXPECT_GE(r.combined.min, 1.0);
  EXPECT_GT(r.wcnc.paths, 0u);
}

TEST(CheckConfig, TinyIndustrialIsClean) {
  const CheckResult r = check_config(tiny_industrial(), fast_check());
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().describe());
}

TEST(CheckConfig, StoreForwardFloorMatchesManualComputation) {
  const TrafficConfig cfg = config::sample_config();
  // Path 0 is v1: e1 -> S1 -> S3 -> e6. 500 B = 4000 bits at 100 Mb/s =
  // 40 us per hop, plus 16 us at each of the two switch output ports.
  EXPECT_NEAR(store_forward_floor(cfg, 0), 3 * 40.0 + 2 * 16.0, 1e-9);
}

TEST(CheckConfig, SkewCombinedFaultBreaksCombinedIsMin) {
  CheckOptions opts = fast_check();
  opts.fault = Fault::kSkewCombined;
  opts.fault_factor = 0.5;
  const CheckResult r = check_config(config::sample_config(), opts);
  ASSERT_FALSE(r.ok());
  bool saw_combined_is_min = false;
  for (const Violation& v : r.violations) {
    if (v.kind == CheckKind::kCombinedIsMin) saw_combined_is_min = true;
  }
  EXPECT_TRUE(saw_combined_is_min);
}

TEST(CheckConfig, DeflateTrajectoryFaultBreaksSimDominance) {
  CheckOptions opts = fast_check();
  opts.fault = Fault::kDeflateTrajectory;
  opts.fault_factor = 0.2;
  const CheckResult r = check_config(tiny_industrial(), opts);
  ASSERT_FALSE(r.ok());
  bool saw_sim_dominance = false;
  for (const Violation& v : r.violations) {
    if (v.kind == CheckKind::kSimDominance && v.method == "trajectory") {
      saw_sim_dominance = true;
      EXPECT_GT(v.observed, v.bound);
    }
  }
  EXPECT_TRUE(saw_sim_dominance);
  // The deflated method's pessimism witness dips below 1.
  EXPECT_LT(r.trajectory.min, 1.0);
}

TEST(CheckConfig, FaultStringsRoundTrip) {
  for (Fault f : {Fault::kNone, Fault::kDeflateNetcalc,
                  Fault::kDeflateTrajectory, Fault::kSkewCombined}) {
    const auto back = fault_from_string(to_string(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, f);
  }
  EXPECT_FALSE(fault_from_string("bogus").has_value());
}

TEST(Shrink, ReturnsNulloptOnCleanConfig) {
  ShrinkOptions opts;
  opts.check = fast_check();
  EXPECT_FALSE(shrink(config::sample_config(), opts).has_value());
}

TEST(Shrink, MinimizesAFaultedConfigAndKeepsItFailing) {
  const TrafficConfig cfg = tiny_industrial();
  ShrinkOptions opts;
  opts.check = fast_check();
  opts.check.fault = Fault::kDeflateTrajectory;
  opts.check.fault_factor = 0.2;

  const auto result = shrink(cfg, opts);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->original_vls, cfg.vl_count());
  EXPECT_LT(result->vls, result->original_vls);
  EXPECT_GE(result->vls, 1u);
  EXPECT_GT(result->evaluations, 0u);
  // The minimized configuration must still reproduce a violation...
  const CheckResult again = check_config(result->config, opts.check);
  EXPECT_FALSE(again.ok());
  // ... and be clean without the fault (the library itself is sound).
  CheckOptions clean = opts.check;
  clean.fault = Fault::kNone;
  EXPECT_TRUE(check_config(result->config, clean).ok());
}

TEST(Corpus, WriteReadRoundTripPreservesEverything) {
  const fs::path dir = fresh_temp_dir("roundtrip");
  const TrafficConfig cfg = config::sample_config();

  CorpusEntry entry;
  entry.seed = 1234;
  entry.campaign = 7;
  entry.fault = Fault::kDeflateNetcalc;
  entry.fault_factor = 0.25;
  entry.witness = "sim-dominance [wcnc] path 0: bound 1 < 2";
  entry.config_text = config::save_config_string(cfg);
  const std::string path = (dir / "entry.afdx").string();
  write_corpus_file(entry, path);

  const CorpusEntry back = read_corpus_file(path);
  EXPECT_EQ(back.seed, entry.seed);
  EXPECT_EQ(back.campaign, entry.campaign);
  EXPECT_EQ(back.fault, entry.fault);
  EXPECT_DOUBLE_EQ(back.fault_factor, entry.fault_factor);
  EXPECT_EQ(back.witness, entry.witness);
  const TrafficConfig parsed = back.config();
  EXPECT_EQ(parsed.vl_count(), cfg.vl_count());
  EXPECT_EQ(parsed.all_paths().size(), cfg.all_paths().size());
}

TEST(Corpus, ListReturnsSortedAfdxFilesOnly) {
  const fs::path dir = fresh_temp_dir("listing");
  const TrafficConfig cfg = config::sample_config();
  CorpusEntry entry;
  entry.config_text = config::save_config_string(cfg);
  write_corpus_file(entry, (dir / "b.afdx").string());
  write_corpus_file(entry, (dir / "a.afdx").string());
  {
    std::ofstream((dir / "notes.txt").string()) << "not a corpus file\n";
  }
  const auto files = list_corpus(dir.string());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_NE(files[0].find("a.afdx"), std::string::npos);
  EXPECT_NE(files[1].find("b.afdx"), std::string::npos);
  EXPECT_TRUE(list_corpus((dir / "missing").string()).empty());
}

TEST(Campaign, EndToEndFaultRunShrinksPersistsAndReplays) {
  const fs::path dir = fresh_temp_dir("endtoend");
  CampaignOptions opts;
  opts.campaigns = 2;
  opts.seed = 11;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();
  opts.check.fault = Fault::kDeflateTrajectory;
  opts.check.fault_factor = 0.3;
  opts.corpus_dir = dir.string();
  opts.shrink.max_evaluations = 120;

  const CampaignReport report = run_campaigns(opts);
  ASSERT_GT(report.violation_count, 0u);

  const auto files = list_corpus(dir.string());
  ASSERT_FALSE(files.empty());
  for (const std::string& file : files) {
    const CorpusEntry entry = read_corpus_file(file);
    EXPECT_EQ(entry.fault, Fault::kDeflateTrajectory);
    const ReplayOutcome outcome = replay(entry, fast_check());
    EXPECT_TRUE(outcome.clean.ok())
        << file << ": " << outcome.clean.violations.front().describe();
    ASSERT_TRUE(outcome.faulted.has_value());
    EXPECT_FALSE(outcome.faulted->ok()) << file;
    EXPECT_TRUE(outcome.regression_ok());
  }
}

TEST(Campaign, ReportIsDeterministicAcrossThreadCounts) {
  CampaignOptions opts;
  opts.campaigns = 3;
  opts.seed = 42;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();

  opts.threads = 1;
  const CampaignReport serial = run_campaigns(opts);
  opts.threads = 3;
  const CampaignReport parallel = run_campaigns(opts);

  std::ostringstream a, b;
  serial.write_json(a, /*include_timing=*/false);
  parallel.write_json(b, /*include_timing=*/false);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_TRUE(serial.ok());
}

TEST(Campaign, InfeasibleSpecsAreSkippedNotFatal) {
  CampaignOptions opts;
  opts.campaigns = 2;
  opts.seed = 3;
  opts.check = fast_check();
  // A grid no generator draw can satisfy: far too many VLs for the
  // utilization cap of a 2-switch network.
  opts.grid.vl_counts = {5000};
  opts.grid.switch_counts = {2};
  opts.grid.end_system_counts = {4};
  const CampaignReport report = run_campaigns(opts);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_TRUE(report.ok());
  for (const CampaignOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.skipped);
    EXPECT_FALSE(o.skip_reason.empty());
  }
}

TEST(Campaign, JsonReportCarriesTheExpectedKeys) {
  CampaignOptions opts;
  opts.campaigns = 1;
  opts.seed = 9;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();
  const CampaignReport report = run_campaigns(opts);
  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  for (const char* key :
       {"\"tool\"", "\"seed\"", "\"campaigns\"", "\"completed\"",
        "\"paths_checked\"", "\"schedules_simulated\"", "\"violations\"",
        "\"pessimism\"", "\"wcnc\"", "\"trajectory\"", "\"combined\"",
        "\"campaign_results\"", "\"wall_ms\"", "\"threads\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  std::ostringstream without_timing;
  report.write_json(without_timing, /*include_timing=*/false);
  EXPECT_EQ(without_timing.str().find("wall_ms"), std::string::npos);
}

TEST(Checkpoint, RoundTripAndMissingAndMalformedFiles) {
  const fs::path dir = fresh_temp_dir("checkpoint");
  CampaignOptions opts;
  opts.campaigns = 3;
  opts.seed = 77;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();
  const CampaignReport report = run_campaigns(opts);
  ASSERT_EQ(report.interrupted, 0u);

  const std::string path = (dir / "run.ckpt").string();
  write_checkpoint(report, path);
  const auto cp = read_checkpoint(path);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->seed, 77u);
  EXPECT_EQ(cp->campaigns, 3u);
  ASSERT_EQ(cp->outcomes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const CampaignOutcome& a = report.outcomes[i];
    const CampaignOutcome& b = cp->outcomes[i];
    EXPECT_EQ(b.spec.index, a.spec.index);
    EXPECT_EQ(b.skipped, a.skipped);
    EXPECT_EQ(b.vls, a.vls);
    EXPECT_EQ(b.paths, a.paths);
    EXPECT_EQ(b.check.violations.size(), a.check.violations.size());
    EXPECT_EQ(b.check.schedules_simulated, a.check.schedules_simulated);
    EXPECT_DOUBLE_EQ(b.check.wcnc.min, a.check.wcnc.min);
    EXPECT_DOUBLE_EQ(b.check.combined.max, a.check.combined.max);
  }

  EXPECT_FALSE(read_checkpoint((dir / "missing.ckpt").string()).has_value());
  {
    std::ofstream((dir / "bad.ckpt").string()) << "not a checkpoint\n";
  }
  EXPECT_THROW((void)read_checkpoint((dir / "bad.ckpt").string()), Error);
}

// -- Corrupt-checkpoint corpus ----------------------------------------------
// Every way a checkpoint can rot on disk must surface as afdx::Error with a
// message naming the problem -- never a bare std::invalid_argument /
// std::out_of_range from the old stoull/stod path, and never silent
// acceptance of garbage.

/// Writes `text` to a file and asserts read_checkpoint throws afdx::Error
/// whose message contains `needle`. Any other exception type fails the test.
void expect_checkpoint_error(const fs::path& dir, const char* tag,
                             const std::string& text,
                             const std::string& needle) {
  const std::string path = (dir / (std::string(tag) + ".ckpt")).string();
  {
    std::ofstream out(path);
    out << text;
  }
  try {
    (void)read_checkpoint(path);
    ADD_FAILURE() << tag << ": corrupt checkpoint was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << tag << ": message '" << e.what() << "' should mention '" << needle
        << "'";
  } catch (const std::exception& e) {
    ADD_FAILURE() << tag << ": escaped as non-afdx exception: " << e.what();
  }
}

TEST(Checkpoint, CorruptCorpusAlwaysFailsAsAfdxError) {
  const fs::path dir = fresh_temp_dir("checkpoint_corrupt");
  const std::string header = "afdx-fuzz-checkpoint v1\n";
  const std::string run = "run seed=7 campaigns=2\n";
  const std::string outcome =
      "outcome index=0 skipped=0 reason=ok vls=3 paths=4 cpaths=4 "
      "schedules=10 corpus=a.afdx wall_us=12.5\n";

  // Truncated record: the outcome line lost its tail fields.
  expect_checkpoint_error(dir, "truncated_record",
                          header + run + "outcome index=0 skipped=0\n",
                          "missing field");
  // Bad hex escape in a percent-encoded value.
  expect_checkpoint_error(
      dir, "bad_hex_escape",
      header + run +
          "outcome index=0 skipped=1 reason=boom%zz vls=0 paths=0 cpaths=0 "
          "schedules=0 corpus= wall_us=0\n",
      "bad %XX escape");
  // Escape truncated at end of value ("...%4").
  expect_checkpoint_error(
      dir, "truncated_escape",
      header + run +
          "outcome index=0 skipped=1 reason=boom%4 vls=0 paths=0 cpaths=0 "
          "schedules=0 corpus= wall_us=0\n",
      "truncated %XX escape");
  // Trailing garbage after a numeric field (old stoull accepted "42x").
  expect_checkpoint_error(dir, "trailing_garbage",
                          header + "run seed=7 campaigns=42x\n",
                          "bad unsigned integer");
  // Out-of-range count (overflows uint64).
  expect_checkpoint_error(
      dir, "out_of_range_count",
      header + "run seed=7 campaigns=99999999999999999999999999\n",
      "bad unsigned integer");
  // Non-numeric double field.
  expect_checkpoint_error(
      dir, "bad_double",
      header + run +
          "outcome index=0 skipped=0 reason=ok vls=3 paths=4 cpaths=4 "
          "schedules=10 corpus= wall_us=fast\n",
      "bad number");
  // Field token without '='.
  expect_checkpoint_error(dir, "no_equals",
                          header + "run seed=7 campaigns\n",
                          "malformed field");
  // pess record referencing an outcome that never appeared.
  expect_checkpoint_error(
      dir, "orphan_pess",
      header + run + "pess index=3 method=wcnc mean=1 min=0 max=2 paths=4\n",
      "pess record before its outcome");
}

TEST(Checkpoint, CorruptCheckpointFallsBackToCleanFreshRun) {
  // The resume workflow: a checkpoint that fails to parse is reported and
  // discarded, and the campaign driver starts fresh -- the fresh run must
  // be bit-identical to one that never saw a checkpoint.
  const fs::path dir = fresh_temp_dir("checkpoint_fallback");
  const std::string path = (dir / "rotten.ckpt").string();
  {
    std::ofstream out(path);
    out << "afdx-fuzz-checkpoint v1\nrun seed=7 campaigns=2x\n";
  }

  CampaignOptions opts;
  opts.campaigns = 2;
  opts.seed = 7;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();

  std::optional<Checkpoint> cp;
  try {
    cp = read_checkpoint(path);
  } catch (const Error&) {
    cp.reset();  // corrupt: fall back to a fresh run
  }
  ASSERT_FALSE(cp.has_value());

  const CampaignReport fresh = run_campaigns(opts);
  const CampaignReport reference = run_campaigns(opts);
  std::ostringstream a, b;
  fresh.write_json(a, /*include_timing=*/false);
  reference.write_json(b, /*include_timing=*/false);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(fresh.completed, 2u);
}

TEST(Campaign, ExpiredTokenMarksEveryCampaignInterrupted) {
  engine::CancelToken token;
  token.cancel();
  CampaignOptions opts;
  opts.campaigns = 4;
  opts.seed = 5;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();
  opts.cancel = &token;
  const CampaignReport report = run_campaigns(opts);
  EXPECT_EQ(report.interrupted, 4u);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_FALSE(report.complete());
  EXPECT_TRUE(report.ok());  // interruption is not a soundness violation
  for (const CampaignOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.interrupted);
    EXPECT_FALSE(o.skip_reason.empty());
  }
}

TEST(Campaign, ResumedRunIsBitIdenticalToUninterruptedRun) {
  CampaignOptions opts;
  opts.campaigns = 4;
  opts.seed = 21;
  opts.grid = GridOptions::smoke();
  opts.check = fast_check();
  const CampaignReport full = run_campaigns(opts);
  ASSERT_EQ(full.interrupted, 0u);

  // Simulate an interruption after two campaigns: resume from a truncated
  // outcome list and re-run. Campaigns 0-1 replay from the checkpoint,
  // 2-3 execute live; the merged report must match the uninterrupted one.
  const fs::path dir = fresh_temp_dir("resume");
  const std::string path = (dir / "partial.ckpt").string();
  write_checkpoint(full, path);
  auto cp = read_checkpoint(path);
  ASSERT_TRUE(cp.has_value());
  cp->outcomes.resize(2);

  CampaignOptions resumed_opts = opts;
  resumed_opts.resume = cp->outcomes;
  const CampaignReport resumed = run_campaigns(resumed_opts);

  std::ostringstream a, b;
  full.write_json(a, /*include_timing=*/false);
  resumed.write_json(b, /*include_timing=*/false);
  EXPECT_EQ(a.str(), b.str());
}

// -- Committed corpus regression --------------------------------------------
// Every artifact under tests/corpus/ must stay green without its fault and
// keep reproducing its violation with the fault re-applied.

class CorpusRegression : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusRegression, ReplaysGreenAndFaultReproduces) {
  const CorpusEntry entry = read_corpus_file(GetParam());
  const ReplayOutcome outcome = replay(entry, fast_check());
  EXPECT_TRUE(outcome.clean.ok())
      << (outcome.clean.violations.empty()
              ? ""
              : outcome.clean.violations.front().describe());
  if (entry.fault != Fault::kNone) {
    ASSERT_TRUE(outcome.faulted.has_value());
    EXPECT_FALSE(outcome.faulted->ok())
        << "recorded fault no longer reproduces; the artifact is stale";
  }
  EXPECT_TRUE(outcome.regression_ok());
}

std::vector<std::string> committed_corpus() {
  return list_corpus(std::string(AFDX_REPO_ROOT) + "/tests/corpus");
}

std::string corpus_test_name(
    const ::testing::TestParamInfo<std::string>& info) {
  std::string name = fs::path(info.param).stem().string();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Entries, CorpusRegression,
                         ::testing::ValuesIn(committed_corpus()),
                         corpus_test_name);

TEST(IncrementalDiff, SampleConfigIsBitIdenticalAcrossFaultSweep) {
  IncrementalDiffOptions options;
  options.random_scenarios = 4;
  const IncrementalDiffResult result =
      check_incremental_diff(config::sample_config(), options);
  for (const IncrementalMismatch& m : result.mismatches) {
    ADD_FAILURE() << m.describe();
  }
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.scenarios_checked, 0u);
  EXPECT_GT(result.values_compared, 0u);
  // The fast path must actually engage: no fallbacks, real seeding.
  EXPECT_EQ(result.full_fallbacks, 0u);
  EXPECT_GT(result.seeded_ports, 0u);
  EXPECT_GT(result.seeded_prefixes, 0u);
}

TEST(IncrementalDiff, GeneratedConfigIsBitIdentical) {
  gen::IndustrialOptions spec;
  spec.seed = 17;
  spec.vl_count = 40;
  spec.end_system_count = 12;
  IncrementalDiffOptions options;
  options.random_scenarios = 2;
  options.switches = false;
  const IncrementalDiffResult result =
      check_incremental_diff(gen::industrial_config(spec), options);
  for (const IncrementalMismatch& m : result.mismatches) {
    ADD_FAILURE() << m.describe();
  }
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.scenarios_checked, 0u);
  EXPECT_EQ(result.full_fallbacks, 0u);
}

}  // namespace
}  // namespace afdx::valid

# Empty dependencies file for incremental_design.
# This may be replaced when dependencies are built.

#!/usr/bin/env python3
"""Validate a BENCH_*.json document against the afdx-bench/1 schema.

Usage: scripts/validate_bench_json.py BENCH_table1_industrial.json [...]

The schema is documented in EXPERIMENTS.md ("Machine-readable bench
output"). This validator is intentionally dependency-free (stdlib json
only) so it runs anywhere CI does.

Exit status: 0 when every document validates, 1 otherwise.
"""

import json
import sys

NUMBER = (int, float)


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def check_number(doc, path, allow_none=False):
    cur = doc
    for part in path.split("."):
        require(isinstance(cur, dict), f"{path}: parent is not an object")
        require(part in cur, f"{path}: missing")
        cur = cur[part]
    if allow_none and cur is None:
        return
    require(isinstance(cur, NUMBER) and not isinstance(cur, bool),
            f"{path}: expected a number, got {cur!r}")


def check_tracer_overhead(doc):
    for field in ("calibration_iterations", "disabled_ns_per_span",
                  "enabled_ns_per_span", "run_spans", "run_wall_us",
                  "disabled_overhead_pct", "enabled_overhead_pct"):
        check_number(doc, f"tracer_overhead.{field}")
    oh = doc["tracer_overhead"]
    require(oh["disabled_ns_per_span"] >= 0,
            "tracer_overhead.disabled_ns_per_span: negative")
    # The stated budget: tracing must be ~free when disabled (every bench),
    # and cost <5% when enabled on the reference workload. Micro-benches
    # with sub-millisecond runs have proportionally higher span density, so
    # the enabled budget is only enforced where it is defined:
    # table1_industrial (see EXPERIMENTS.md).
    require(oh["disabled_overhead_pct"] < 1.0,
            f"disabled tracing overhead {oh['disabled_overhead_pct']:.3f}% "
            "breaches the ~0% budget")
    if doc.get("bench") == "table1_industrial":
        require(oh["enabled_overhead_pct"] < 5.0,
                f"enabled tracing overhead {oh['enabled_overhead_pct']:.3f}% "
                "breaches the <5% budget")


def check_registry(doc):
    require(isinstance(doc.get("counters"), dict), "counters: missing/not an object")
    for name, value in doc["counters"].items():
        require(isinstance(value, int) and not isinstance(value, bool),
                f"counters.{name}: expected an integer, got {value!r}")
    require(isinstance(doc.get("histograms"), dict),
            "histograms: missing/not an object")
    for name, hist in doc["histograms"].items():
        require(isinstance(hist, dict), f"histograms.{name}: not an object")
        for field in ("count", "sum", "min", "max", "mean"):
            require(field in hist, f"histograms.{name}.{field}: missing")
            require(isinstance(hist[field], NUMBER),
                    f"histograms.{name}.{field}: not a number")


def check_metrics(doc):
    if "metrics" not in doc:  # optional: only engine-driven benches emit it
        return
    for field in ("netcalc_wall_us", "trajectory_wall_us", "combine_wall_us",
                  "total_wall_us", "total_cpu_us", "paths",
                  "paths_per_second", "threads", "levels", "max_level_width"):
        check_number(doc, f"metrics.{field}", allow_none=True)
    for field in ("hits", "misses", "hit_rate"):
        check_number(doc, f"metrics.cache.{field}", allow_none=True)


def check_ladder_frontier(doc):
    """Bench-specific contract of BENCH_ladder_frontier.json: the frontier
    is non-empty, every point is sound (pessimism >= 1) with full path
    coverage, and the mean pessimism is monotonically non-increasing as the
    token budget grows (the points are emitted in budget order)."""
    if doc.get("bench") != "ladder_frontier":
        return
    frontier = doc["results"].get("frontier")
    require(isinstance(frontier, list) and frontier,
            "results.frontier: missing/empty")
    prev_mean = None
    for i, point in enumerate(frontier):
        require(isinstance(point, dict), f"frontier[{i}]: not an object")
        for field in ("budget", "path_evals", "paths_escalated",
                      "mean_pessimism", "max_pessimism", "min_pessimism",
                      "paths_measured", "wall_us"):
            require(field in point, f"frontier[{i}].{field}: missing")
        require(point["min_pessimism"] >= 1.0 - 1e-9,
                f"frontier[{i}] ({point['budget']}): min pessimism "
                f"{point['min_pessimism']} < 1 witnesses unsoundness")
        require(point["paths_measured"] > 0,
                f"frontier[{i}] ({point['budget']}): no paths measured")
        if prev_mean is not None:
            require(point["mean_pessimism"] <= prev_mean + 1e-9,
                    f"frontier[{i}] ({point['budget']}): mean pessimism "
                    f"{point['mean_pessimism']} rose above the cheaper "
                    f"budget's {prev_mean} (frontier must be monotone)")
        prev_mean = point["mean_pessimism"]
    last = frontier[-1]
    require(last["budget"] == "unlimited" and not last["budget_exhausted"],
            "frontier[-1]: expected the unlimited (complete) ladder run")


def check_capacity(doc):
    """Bench-specific contract of BENCH_capacity.json: the frontier is
    non-empty, sizes grow strictly monotonically, the three quick rungs
    (500/2000/10000 VLs) are always present, a full run tops out at a
    >= 100k-VL rung, every rung reports a positive paths/second, and the
    streaming sink saw exactly one record per path (nothing dropped,
    nothing materialized twice)."""
    if doc.get("bench") != "capacity":
        return
    frontier = doc["results"].get("frontier")
    require(isinstance(frontier, list) and frontier,
            "results.frontier: missing/empty")
    prev_vls = None
    for i, point in enumerate(frontier):
        require(isinstance(point, dict), f"frontier[{i}]: not an object")
        for field in ("vls", "domains", "switches", "paths", "gen_wall_us",
                      "analysis_wall_us", "paths_per_second", "ok", "failed",
                      "skipped", "sink_calls"):
            require(field in point, f"frontier[{i}].{field}: missing")
        require(point["paths_per_second"] > 0,
                f"frontier[{i}] ({point['vls']} VLs): paths_per_second "
                f"{point['paths_per_second']!r} not positive")
        require(point["sink_calls"] == point["paths"],
                f"frontier[{i}] ({point['vls']} VLs): sink saw "
                f"{point['sink_calls']} records for {point['paths']} paths")
        require(point["ok"] + point["failed"] + point["skipped"]
                == point["paths"],
                f"frontier[{i}] ({point['vls']} VLs): ok/failed/skipped do "
                "not add up to the path count")
        if prev_vls is not None:
            require(point["vls"] > prev_vls,
                    f"frontier[{i}]: sizes must be strictly increasing "
                    f"({point['vls']} after {prev_vls})")
        prev_vls = point["vls"]
    sizes = {point["vls"] for point in frontier}
    for rung in (500, 2000, 10000):
        require(rung in sizes,
                f"frontier: quick rung {rung} VLs missing (got "
                f"{sorted(sizes)})")
    if doc.get("mode") == "full":
        require(prev_vls >= 100000,
                f"frontier: largest full-mode rung is {prev_vls} VLs, "
                "expected >= 100000")


def validate(doc):
    require(isinstance(doc, dict), "top level: not an object")
    require(doc.get("schema") == "afdx-bench/1",
            f"schema: expected 'afdx-bench/1', got {doc.get('schema')!r}")
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench: missing/empty")
    require(doc.get("mode") in ("quick", "full"),
            f"mode: expected 'quick' or 'full', got {doc.get('mode')!r}")
    require(isinstance(doc.get("config"), dict), "config: missing/not an object")
    require(isinstance(doc.get("results"), dict),
            "results: missing/not an object")
    check_metrics(doc)
    check_registry(doc)
    check_tracer_overhead(doc)
    check_ladder_frontier(doc)
    check_capacity(doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failed = False
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            validate(doc)
        except (OSError, json.JSONDecodeError, Invalid) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            failed = True
            continue
        print(f"{path}: OK (bench={doc['bench']}, mode={doc['mode']}, "
              f"counters={len(doc['counters'])}, "
              f"disabled_overhead={doc['tracer_overhead']['disabled_overhead_pct']:.4f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// The two configurations used throughout the DATE 2010 paper.
//
// * sample_config() — the paper's Figure 2: five emitting end systems
//   (e1..e5), two receivers (e6, e7), three switches; v1..v4 converge on the
//   S3 output port toward e6 while v5 exits toward e7. All VLs have
//   BAG = 4 ms and s_max = 500 B (4000 bits); links run at 100 Mb/s and the
//   switch output-port technological latency is 16 us. The options let the
//   caller vary v1's BAG and s_max, which is exactly the parameter sweep of
//   the paper's Figures 7, 8 and 9.
//
// * illustrative_config() — a faithful-in-spirit reconstruction of the
//   paper's Figure 1 (the OCR of the figure is too lossy for an exact copy):
//   five interconnected switches, ten end systems, ten VLs including the
//   unicast vx and the multicast v6 with two paths, as described in the
//   text. Used by examples and integration tests that need a mid-size
//   multicast topology.
#pragma once

#include "vl/traffic_config.hpp"

namespace afdx::config {

/// Parameters of the Figure-2 sample configuration.
struct SampleOptions {
  /// BAG of the flow under study v1 (paper default: 4 ms).
  Microseconds bag_v1 = microseconds_from_ms(4.0);
  /// s_max of v1 in bytes (paper default: 500 B).
  Bytes s_max_v1 = 500;
  /// BAG of the other four VLs.
  Microseconds bag_others = microseconds_from_ms(4.0);
  /// s_max of the other four VLs in bytes.
  Bytes s_max_others = 500;
  /// Link rate (paper: 100 Mb/s).
  BitsPerMicrosecond link_rate = rate_from_mbps(100.0);
  /// Switch output-port technological latency (paper: 16 us; the OCR shows
  /// "6us" but every companion paper of the authors uses 16 us).
  Microseconds switch_latency = 16.0;
};

/// Builds the paper's Figure-2 configuration. The returned config contains
/// VLs named "v1".."v5"; the flow under study is "v1" (path e1 -> S1 -> S3
/// -> e6).
[[nodiscard]] TrafficConfig sample_config(const SampleOptions& options = {});

/// Builds the Figure-1-style illustrative configuration (5 switches, 10 end
/// systems, 10 VLs, with multicast). Deterministic.
[[nodiscard]] TrafficConfig illustrative_config();

}  // namespace afdx::config

#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "obs/bench_json.hpp"
#include "serve/json.hpp"

namespace afdx::serve {

namespace {

[[noreturn]] void fail_key(const std::string& key, const std::string& what) {
  throw Error("request key '" + key + "': " + what);
}

const std::string& string_field(const std::string& key, const JsonValue& v) {
  if (!v.is_string()) {
    fail_key(key, std::string("expected a string, got ") + v.kind_name());
  }
  return v.as_string();
}

double number_field(const std::string& key, const JsonValue& v) {
  if (!v.is_number()) {
    fail_key(key, std::string("expected a number, got ") + v.kind_name());
  }
  return v.as_number();
}

std::uint64_t uint_field(const std::string& key, const JsonValue& v,
                         std::uint64_t max) {
  const double n = number_field(key, v);
  if (!(n >= 0.0) || n != std::floor(n)) {
    fail_key(key, "expected a non-negative integer");
  }
  if (n > static_cast<double>(max)) {
    fail_key(key, "value out of range (max " + std::to_string(max) + ")");
  }
  return static_cast<std::uint64_t>(n);
}

Op parse_op(const std::string& name) {
  if (name == "status") return Op::kStatus;
  if (name == "bounds") return Op::kBounds;
  if (name == "whatif") return Op::kWhatIf;
  if (name == "fault_sweep") return Op::kFaultSweep;
  if (name == "ladder") return Op::kLadder;
  if (name == "shutdown") return Op::kShutdown;
  throw Error("request key 'op': unknown op '" + name +
              "' (expected status|bounds|whatif|fault_sweep|ladder|shutdown)");
}

LadderSpec parse_ladder_spec(const JsonValue& value) {
  if (!value.is_object()) {
    fail_key("ladder", std::string("expected an object, got ") +
                           value.kind_name());
  }
  LadderSpec spec;
  for (const auto& [key, entry] : value.as_object()) {
    if (key == "budget_ms") {
      const double ms = number_field("ladder.budget_ms", entry);
      if (!(ms >= 0.0) || !std::isfinite(ms)) {
        fail_key("ladder.budget_ms", "expected a finite non-negative number");
      }
      spec.budget_ms = ms;
    } else if (key == "max_path_evals") {
      spec.max_path_evals =
          uint_field("ladder.max_path_evals", entry, 1ull << 53);
    } else {
      fail_key("ladder." + key,
               "unknown ladder field (expected budget_ms, max_path_evals)");
    }
  }
  return spec;
}

engine::VlOverride parse_override(const JsonValue& entry) {
  if (!entry.is_object()) {
    fail_key("set", std::string("expected an array of objects, got an "
                                "element of kind ") +
                        entry.kind_name());
  }
  engine::VlOverride o;
  for (const auto& [key, value] : entry.as_object()) {
    if (key == "vl") {
      o.vl = string_field("vl", value);
    } else if (key == "bag_us") {
      o.bag = number_field(key, value);
    } else if (key == "s_min_bytes") {
      o.s_min = static_cast<Bytes>(uint_field(key, value, 0xFFFFFFFFull));
    } else if (key == "s_max_bytes") {
      o.s_max = static_cast<Bytes>(uint_field(key, value, 0xFFFFFFFFull));
    } else if (key == "jitter_us") {
      o.max_release_jitter = number_field(key, value);
    } else if (key == "priority") {
      o.priority = static_cast<std::uint8_t>(uint_field(key, value, 255));
    } else {
      fail_key(key, "unknown override field (expected vl, bag_us, "
                    "s_min_bytes, s_max_bytes, jitter_us, priority)");
    }
  }
  if (o.vl.empty()) fail_key("set", "override entry is missing 'vl'");
  if (o.empty()) {
    fail_key("set", "override of '" + o.vl + "' changes nothing");
  }
  return o;
}

}  // namespace

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kStatus:
      return "status";
    case Op::kBounds:
      return "bounds";
    case Op::kWhatIf:
      return "whatif";
    case Op::kFaultSweep:
      return "fault_sweep";
    case Op::kLadder:
      return "ladder";
    case Op::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Request parse_request(const std::string& line) {
  const JsonValue root = parse_json(line);
  if (!root.is_object()) {
    throw Error(std::string("request must be a JSON object, got ") +
                root.kind_name());
  }

  Request req;
  bool have_op = false;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "id") {
      // JSON numbers are doubles: ids above 2^53 would silently collide.
      req.id = uint_field(key, value, 1ull << 53);
    } else if (key == "op") {
      req.op = parse_op(string_field(key, value));
      have_op = true;
    } else if (key == "config") {
      req.config = string_field(key, value);
    } else if (key == "vl") {
      req.vl = string_field(key, value);
    } else if (key == "set") {
      if (!value.is_array()) {
        fail_key(key, std::string("expected an array, got ") +
                          value.kind_name());
      }
      for (const JsonValue& entry : value.as_array()) {
        req.set.push_back(parse_override(entry));
      }
    } else if (key == "fail") {
      req.fail_spec = string_field(key, value);
    } else if (key == "scope") {
      req.scope = string_field(key, value);
    } else if (key == "ladder") {
      req.ladder = parse_ladder_spec(value);
    } else if (key == "deadline_ms") {
      const double ms = number_field(key, value);
      if (!(ms >= 0.0) || !std::isfinite(ms)) {
        fail_key(key, "expected a finite non-negative number");
      }
      req.deadline_ms = ms;
    } else if (key == "limit") {
      req.limit = static_cast<std::size_t>(uint_field(key, value, 1000000));
    } else {
      fail_key(key, "unknown request key (expected id, op, config, vl, set, "
                    "fail, scope, ladder, deadline_ms, limit)");
    }
  }
  if (!have_op) throw Error("request is missing 'op'");
  return req;
}

std::string error_response(std::uint64_t id, const std::string& message) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object()
      .field("id", id)
      .field("ok", false)
      .field("error", std::string_view(message))
      .end_object();
  return out.str();
}

std::uint64_t peek_request_id(const std::string& line) noexcept {
  try {
    const JsonValue root = parse_json(line);
    const JsonValue* id = root.find("id");
    if (id != nullptr && id->is_number() && id->as_number() >= 0.0 &&
        id->as_number() == std::floor(id->as_number())) {
      return static_cast<std::uint64_t>(id->as_number());
    }
  } catch (const Error&) {
  }
  return 0;
}

}  // namespace afdx::serve

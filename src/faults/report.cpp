#include "faults/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "redundancy/redundancy.hpp"

namespace afdx::faults {

namespace {

constexpr Microseconds kInf = std::numeric_limits<Microseconds>::infinity();

std::string path_name(const TrafficConfig& config, std::size_t path_index) {
  const VlPath& p = config.all_paths()[path_index];
  const VirtualLink& vl = config.vl(p.vl);
  return vl.name + " -> " +
         config.network().node(vl.destinations[p.dest_index]).name;
}

void print_us(std::ostream& out, Microseconds us) {
  if (!std::isfinite(us)) {
    out << "unbounded";
  } else {
    out << std::fixed << std::setprecision(2) << us << " us";
  }
}

/// Analyzes one scenario against the healthy baseline. `healthy_floors`
/// are redundancy::path_floor per healthy path; a non-null `baseline`
/// enables incremental re-analysis seeded from the healthy run.
void analyze_one(const TrafficConfig& healthy,
                 const std::vector<Microseconds>& healthy_bounds,
                 const std::vector<Microseconds>& healthy_floors,
                 const engine::RunResult* baseline,
                 const ScenarioOptions& options, ScenarioReport& sr) {
  AFDX_TRACE_SPAN("faults.scenario", "faults");
  obs::registry().counter("faults.scenarios_analyzed").add();
  const DegradedView view = apply_scenario(healthy, sr.scenario);

  engine::RunResult run;
  if (view.config.has_value()) {
    engine::AnalysisEngine eng(*view.config, engine::Options{1});
    if (baseline != nullptr) {
      run = eng.run_incremental(
          healthy, *baseline,
          scenario_changed_links(healthy.network(), sr.scenario), options.nc,
          options.tj, engine::RunControl{options.cancel});
    } else {
      run = eng.run_resilient(options.nc, options.tj,
                              engine::RunControl{options.cancel});
    }
  }

  sr.intact = view.intact;
  sr.rerouted = view.rerouted;
  sr.unreachable = view.unreachable;
  sr.paths.resize(healthy.all_paths().size());
  for (std::size_t p = 0; p < sr.paths.size(); ++p) {
    PathDegradation& pd = sr.paths[p];
    pd.fate = view.paths[p].fate;
    pd.healthy_us = healthy_bounds[p];

    Microseconds degraded_floor = healthy_floors[p];
    if (pd.fate == PathFate::kUnreachable) {
      pd.state = engine::PathState::kSkipped;
      pd.message = "no surviving route";
      pd.degraded_raw_us = kInf;
    } else {
      const std::size_t di = view.paths[p].degraded_index;
      pd.state = run.status[di].state;
      pd.message = run.status[di].message;
      pd.degraded_raw_us = run.combined[di];
      degraded_floor =
          redundancy::path_floor(*view.config, view.config->all_paths()[di]);
      if (pd.state == engine::PathState::kFailed) ++sr.failed;
      if (pd.state == engine::PathState::kSkipped) ++sr.skipped;
    }

    // Covering envelope: the certifiable degraded-mode bound must dominate
    // both modes (frames of both are in flight across the transition).
    pd.degraded_us = std::max(pd.healthy_us, pd.degraded_raw_us);
    if (std::isfinite(pd.degraded_us) && std::isfinite(pd.healthy_us) &&
        pd.healthy_us > 0.0) {
      pd.inflation = pd.degraded_us / pd.healthy_us;
      if (pd.inflation > sr.worst_inflation) {
        sr.worst_inflation = pd.inflation;
        sr.worst_path = p;
      }
    }

    // Dual-network figures: this network degraded, the mirror healthy.
    const redundancy::PathRedundancy rd = redundancy::combine(
        pd.degraded_us, degraded_floor, pd.healthy_us, healthy_floors[p]);
    pd.first_arrival_us = rd.first_arrival_bound;
    pd.skew_us = rd.skew_max;
    pd.skew_healthy_us = pd.healthy_us - healthy_floors[p];
    pd.redundancy_lost = !std::isfinite(pd.degraded_us);
  }
  sr.analyzed = true;
}

}  // namespace

std::vector<LinkId> scenario_changed_links(const Network& net,
                                           const FaultScenario& scenario) {
  std::vector<LinkId> changed;
  for (LinkId l : scenario.failed_links) {
    changed.push_back(l);
    changed.push_back(net.reverse(l));
  }
  for (NodeId node : scenario.failed_nodes) {
    for (LinkId l : net.links_from(node)) changed.push_back(l);
    for (LinkId l : net.links_into(node)) changed.push_back(l);
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  return changed;
}

bool DegradationReport::complete() const noexcept {
  for (const engine::PathStatus& st : healthy_status) {
    if (!st.ok()) return false;
  }
  for (const ScenarioReport& sr : scenarios) {
    if (!sr.analyzed || sr.failed + sr.skipped > 0) return false;
  }
  return true;
}

DegradationReport analyze_scenarios(const TrafficConfig& healthy,
                                    std::vector<FaultScenario> scenarios,
                                    const ScenarioOptions& options) {
  AFDX_TRACE_SPAN("faults.sweep", "faults");
  DegradationReport report;
  report.scenarios.resize(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.scenarios[i].scenario = std::move(scenarios[i]);
  }

  // Healthy baseline (resilient: an unstable healthy port must not kill the
  // sweep -- its paths simply carry unbounded healthy figures). A caller
  // with a pinned healthy run (the serving daemon's warm baseline) provides
  // it via options.healthy_run and the sweep reuses it as-is.
  engine::RunResult owned_healthy_run;
  const engine::RunResult* healthy_run = options.healthy_run;
  if (healthy_run == nullptr) {
    engine::AnalysisEngine healthy_engine(healthy,
                                          engine::Options{options.threads});
    owned_healthy_run = healthy_engine.run_resilient(
        options.nc, options.tj, engine::RunControl{options.cancel});
    healthy_run = &owned_healthy_run;
  }
  // The run stays alive as the incremental baseline of every scenario, so
  // the per-path figures are copied out instead of moved.
  report.healthy = healthy_run->combined;
  report.healthy_status = healthy_run->status;
  const engine::RunResult* baseline =
      options.incremental ? healthy_run : nullptr;

  std::vector<Microseconds> healthy_floors;
  healthy_floors.reserve(healthy.all_paths().size());
  for (const VlPath& p : healthy.all_paths()) {
    healthy_floors.push_back(redundancy::path_floor(healthy, p));
  }

  // Scenarios are independent: parallelize across them, one serial engine
  // each. Containment keeps one bad scenario (malformed ids) from taking
  // down the sweep.
  engine::ThreadPool pool(
      engine::ThreadPool::resolve_thread_count(options.threads));
  const std::vector<engine::ThreadPool::TaskFailure> failures =
      pool.parallel_for_contained(
          report.scenarios.size(), [&](std::size_t i, int) {
            ScenarioReport& sr = report.scenarios[i];
            if (options.cancel != nullptr && options.cancel->expired()) {
              sr.skip_reason = options.cancel->reason();
              return;
            }
            analyze_one(healthy, report.healthy, healthy_floors, baseline,
                        options, sr);
          });
  for (const engine::ThreadPool::TaskFailure& f : failures) {
    ScenarioReport& sr = report.scenarios[f.index];
    sr.analyzed = false;
    sr.paths.clear();
    sr.skip_reason = f.message;
  }

  for (std::size_t s = 0; s < report.scenarios.size(); ++s) {
    const ScenarioReport& sr = report.scenarios[s];
    report.total_unreachable += sr.unreachable;
    if (sr.worst_path != kNoPath &&
        sr.worst_inflation > report.worst_inflation) {
      report.worst_inflation = sr.worst_inflation;
      report.worst_scenario = s;
      report.worst_path = sr.worst_path;
    }
  }
  return report;
}

void DegradationReport::print(std::ostream& out,
                              const TrafficConfig& healthy_config) const {
  const auto flags = out.flags();
  out << "degraded-mode analysis: " << scenarios.size() << " scenario(s), "
      << healthy.size() << " path(s)\n";
  std::size_t healthy_bad = 0;
  for (const engine::PathStatus& st : healthy_status) {
    if (!st.ok()) ++healthy_bad;
  }
  if (healthy_bad == 0) {
    out << "healthy run: all paths bounded\n";
  } else {
    out << "healthy run: " << healthy_bad << " path(s) without bounds\n";
  }

  for (const ScenarioReport& sr : scenarios) {
    out << "\nscenario '" << sr.scenario.name << "': ";
    if (!sr.analyzed) {
      out << "SKIPPED (" << sr.skip_reason << ")\n";
      continue;
    }
    out << sr.intact << " intact, " << sr.rerouted << " rerouted, "
        << sr.unreachable << " unreachable";
    if (sr.failed > 0) out << ", " << sr.failed << " failed";
    if (sr.skipped > 0) out << ", " << sr.skipped << " skipped";
    out << "\n";

    for (std::size_t p = 0; p < sr.paths.size(); ++p) {
      const PathDegradation& pd = sr.paths[p];
      if (pd.fate == PathFate::kUnreachable) {
        out << "  UNREACHABLE " << path_name(healthy_config, p)
            << " (redundancy lost: mirror network only, first arrival ";
        print_us(out, pd.first_arrival_us);
        out << ")\n";
        continue;
      }
      // Intact paths with unchanged bounds are summarized by the counter
      // line; print the rest.
      const bool changed = pd.fate != PathFate::kIntact ||
                           pd.state != engine::PathState::kOk ||
                           pd.degraded_us > pd.healthy_us;
      if (!changed) continue;
      out << "  " << path_name(healthy_config, p) << " ["
          << to_string(pd.fate) << "]: healthy ";
      print_us(out, pd.healthy_us);
      out << " -> degraded ";
      print_us(out, pd.degraded_us);
      if (pd.inflation > 0.0) {
        out << " (x" << std::fixed << std::setprecision(3) << pd.inflation
            << ")";
      }
      if (pd.state != engine::PathState::kOk) {
        out << " [" << engine::to_string(pd.state);
        if (!pd.message.empty()) out << ": " << pd.message;
        out << "]";
      }
      out << ", RM skew ";
      print_us(out, pd.skew_healthy_us);
      out << " -> ";
      print_us(out, pd.skew_us);
      out << "\n";
    }
  }

  out << "\n";
  if (worst_path != kNoPath) {
    out << "worst inflation: x" << std::fixed << std::setprecision(3)
        << worst_inflation << " on path "
        << path_name(healthy_config, worst_path) << " under scenario '"
        << scenarios[worst_scenario].scenario.name << "'\n";
  } else {
    out << "worst inflation: x1.000 (no surviving path degraded beyond its "
           "healthy bound)\n";
  }
  out << "unreachable path records: " << total_unreachable << "\n";
  out << (complete() ? "report complete\n"
                     : "REPORT INCOMPLETE (see skipped/failed entries)\n");
  out.flags(flags);
}

}  // namespace afdx::faults

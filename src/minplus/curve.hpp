// Piecewise-linear curves for (min,plus) network calculus.
//
// A Curve is a piecewise-linear function f : [0, inf) -> R, represented by
// its breakpoints (x_i, y_i) with linear interpolation in between and a
// final slope extending the last breakpoint to infinity. Arrival curves
// (concave: e.g. the leaky bucket sigma + rho t, with f(0) = sigma) and
// service curves (convex: e.g. the rate-latency R (t - L)+) share this one
// representation; the operations in operations.hpp implement the calculus.
#pragma once

#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/units.hpp"

namespace afdx::minplus {

/// A breakpoint of a piecewise-linear curve.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Breakpoint storage. Arena-aware: inside a common::ArenaScope (the
/// netcalc per-port fixed points install one) every intermediate curve
/// bump-allocates its points and the whole cascade is reclaimed by one
/// rewind; outside a scope the allocator falls back to the heap, so
/// long-lived curves (tests, API users) behave exactly like before.
using PointVec = std::vector<Point, common::ArenaAlloc<Point>>;

/// Piecewise-linear function on [0, inf). Immutable after construction.
class Curve {
 public:
  /// The zero function.
  Curve();

  /// General constructor: breakpoints (strictly increasing x, first x == 0)
  /// plus the slope after the last breakpoint. Collinear interior points are
  /// removed. Throws afdx::Error on malformed input.
  Curve(PointVec points, double final_slope);

  /// Affine curve f(t) = value_at_zero + slope * t. With value_at_zero > 0
  /// this is the leaky-bucket arrival curve (burst, rate).
  [[nodiscard]] static Curve affine(double value_at_zero, double slope);

  /// Rate-latency service curve f(t) = rate * max(0, t - latency).
  [[nodiscard]] static Curve rate_latency(double rate, double latency);

  /// Constant function.
  [[nodiscard]] static Curve constant(double value);

  /// Function value at x >= 0.
  [[nodiscard]] double value(double x) const;

  /// Right-derivative at x >= 0.
  [[nodiscard]] double slope_after(double x) const;

  /// Slope of the final (infinite) piece.
  [[nodiscard]] double final_slope() const noexcept { return final_slope_; }

  /// Breakpoints, first one at x == 0.
  [[nodiscard]] const PointVec& points() const noexcept { return points_; }

  /// True when every point evaluates pointwise <= other (within kEpsilon),
  /// including the tails.
  [[nodiscard]] bool dominated_by(const Curve& other) const;

  /// True when slopes are non-increasing along x (concave, e.g. any arrival
  /// curve built from leaky buckets by sum and min).
  [[nodiscard]] bool is_concave() const;

  /// True when slopes are non-decreasing along x (convex, e.g. rate-latency
  /// service curves and their convolutions).
  [[nodiscard]] bool is_convex() const;

  /// True when the function never decreases.
  [[nodiscard]] bool is_non_decreasing() const;

  /// Smallest s >= 0 with value(s) >= y (the lower pseudo-inverse).
  /// Requires a non-decreasing curve. Throws afdx::Error when the curve
  /// never reaches y (bounded curve below y).
  [[nodiscard]] double pseudo_inverse(double y) const;

  /// Human-readable dump, for diagnostics and tests.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Curve& a, const Curve& b);

 private:
  void normalize();

  PointVec points_;
  double final_slope_ = 0.0;
};

}  // namespace afdx::minplus

#include "engine/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/counters.hpp"

namespace afdx::engine {

int ThreadPool::resolve_thread_count(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  AFDX_REQUIRE(threads_ >= 1, "ThreadPool: thread count must be >= 1");
  executed_.assign(static_cast<std::size_t>(threads_), 0);
  failures_.assign(static_cast<std::size_t>(threads_), Failure{});
  dyn_ranges_.assign(static_cast<std::size_t>(threads_), DynRange{});
  dyn_failures_.assign(static_cast<std::size_t>(threads_), {});
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::shard(std::size_t n,
                                                      int worker) const {
  const auto t = static_cast<std::size_t>(threads_);
  const auto w = static_cast<std::size_t>(worker);
  return {n * w / t, n * (w + 1) / t};
}

void ThreadPool::run_shard(std::size_t n, int worker) {
  const auto [begin, end] = shard(n, worker);
  const std::function<void(std::size_t, int)>* body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body = body_;
  }
  std::size_t done = 0;
  Failure failure;
  for (std::size_t i = begin; i < end; ++i) {
    try {
      (*body)(i, worker);
      ++done;
    } catch (...) {
      // Abandon the rest of the block: a serial loop would not have
      // reached those indices either.
      failure = Failure{i, std::current_exception()};
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  executed_[static_cast<std::size_t>(worker)] += done;
  failures_[static_cast<std::size_t>(worker)] = failure;
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::size_t n;
    bool dynamic;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || batch_seq_ != seen_seq; });
      if (stopping_) return;
      seen_seq = batch_seq_;
      n = batch_n_;
      dynamic = dynamic_batch_;
    }
    if (dynamic) {
      run_dynamic(worker);
    } else {
      run_shard(n, worker);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  if (threads_ == 1) {
    // Legacy path: no synchronization, plain ascending loop.
    std::size_t done = 0;
    try {
      for (std::size_t i = 0; i < n; ++i) {
        body(i, 0);
        ++done;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      executed_[0] += done;
      throw;
    }
    std::lock_guard<std::mutex> lock(mu_);
    executed_[0] += done;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    batch_n_ = n;
    pending_workers_ = threads_ - 1;
    for (Failure& f : failures_) f = Failure{};
    ++batch_seq_;
  }
  start_cv_.notify_all();
  run_shard(n, /*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  body_ = nullptr;

  // Rethrow the failure a serial loop would have hit first.
  const Failure* first = nullptr;
  for (const Failure& f : failures_) {
    if (f.error && (first == nullptr || f.index < first->index)) first = &f;
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

std::vector<ThreadPool::TaskFailure> ThreadPool::parallel_for_contained(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  std::mutex failures_mu;
  std::vector<TaskFailure> failures;
  const auto record = [&](std::size_t i, std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(TaskFailure{i, std::move(message)});
  };
  // The wrapper never lets an exception reach the batch machinery, so no
  // shard is ever abandoned and parallel_for cannot rethrow.
  parallel_for(n, [&](std::size_t i, int worker) {
    try {
      body(i, worker);
    } catch (const std::exception& e) {
      record(i, e.what());
    } catch (...) {
      record(i, "unknown exception");
    }
  });
  std::sort(failures.begin(), failures.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return failures;
}

bool ThreadPool::claim_chunk(int worker, std::size_t& begin,
                             std::size_t& end) {
  static obs::Counter& steal_counter =
      obs::registry().counter("engine.pool.steals");
  std::lock_guard<std::mutex> lock(dyn_mu_);
  DynRange& own = dyn_ranges_[static_cast<std::size_t>(worker)];
  if (own.next < own.end) {
    begin = own.next;
    end = std::min(own.end, own.next + dyn_chunk_);
    own.next = end;
    return true;
  }
  // Steal from the back of the most loaded block, so the owner (claiming
  // from the front) and the thief never contend for the same indices.
  int victim = -1;
  std::size_t best = 0;
  for (int w = 0; w < threads_; ++w) {
    const DynRange& r = dyn_ranges_[static_cast<std::size_t>(w)];
    const std::size_t remaining = r.end - r.next;
    if (remaining > best) {
      best = remaining;
      victim = w;
    }
  }
  if (victim < 0) return false;
  DynRange& v = dyn_ranges_[static_cast<std::size_t>(victim)];
  const std::size_t take = std::min(dyn_chunk_, v.end - v.next);
  begin = v.end - take;
  end = v.end;
  v.end = begin;
  ++steals_;
  steal_counter.add();
  return true;
}

void ThreadPool::run_dynamic(int worker) {
  const std::function<void(std::size_t, int)>* body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    body = body_;
  }
  std::size_t done = 0;
  std::vector<Failure>& failures =
      dyn_failures_[static_cast<std::size_t>(worker)];
  std::size_t begin = 0;
  std::size_t end = 0;
  while (claim_chunk(worker, begin, end)) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*body)(i, worker);
      } catch (...) {
        failures.push_back(Failure{i, std::current_exception()});
      }
      ++done;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  executed_[static_cast<std::size_t>(worker)] += done;
}

void ThreadPool::run_dynamic_batch(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  for (std::vector<Failure>& f : dyn_failures_) f.clear();
  if (threads_ == 1) {
    // Inline ascending loop; per-index containment matches the dynamic
    // "every index executes" contract.
    std::size_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i, 0);
      } catch (...) {
        dyn_failures_[0].push_back(Failure{i, std::current_exception()});
      }
      ++done;
    }
    std::lock_guard<std::mutex> lock(mu_);
    executed_[0] += done;
    return;
  }

  {
    std::lock_guard<std::mutex> lock(dyn_mu_);
    // Chunks small enough to balance, big enough to keep the claim lock
    // cold. Workers seed from the same static blocks parallel_for uses.
    dyn_chunk_ = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threads_) * 8));
    for (int w = 0; w < threads_; ++w) {
      const auto [begin, end] = shard(n, w);
      dyn_ranges_[static_cast<std::size_t>(w)] = DynRange{begin, end};
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    batch_n_ = n;
    dynamic_batch_ = true;
    pending_workers_ = threads_ - 1;
    ++batch_seq_;
  }
  start_cv_.notify_all();
  run_dynamic(/*worker=*/0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  body_ = nullptr;
  dynamic_batch_ = false;
}

void ThreadPool::parallel_for_dynamic(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  run_dynamic_batch(n, body);
  // Rethrow the failure a serial loop would have reported first.
  const Failure* first = nullptr;
  for (const std::vector<Failure>& per_worker : dyn_failures_) {
    for (const Failure& f : per_worker) {
      if (f.error && (first == nullptr || f.index < first->index)) first = &f;
    }
  }
  if (first != nullptr) std::rethrow_exception(first->error);
}

std::vector<ThreadPool::TaskFailure> ThreadPool::parallel_for_dynamic_contained(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  run_dynamic_batch(n, body);
  std::vector<TaskFailure> out;
  for (const std::vector<Failure>& per_worker : dyn_failures_) {
    for (const Failure& f : per_worker) {
      if (!f.error) continue;
      try {
        std::rethrow_exception(f.error);
      } catch (const std::exception& e) {
        out.push_back(TaskFailure{f.index, e.what()});
      } catch (...) {
        out.push_back(TaskFailure{f.index, "unknown exception"});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TaskFailure& a, const TaskFailure& b) {
              return a.index < b.index;
            });
  return out;
}

std::uint64_t ThreadPool::steal_count() const {
  std::lock_guard<std::mutex> lock(dyn_mu_);
  return steals_;
}

std::vector<std::size_t> ThreadPool::tasks_per_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

}  // namespace afdx::engine

// Thread-safe per-output-port memoization cache of WCNC port bounds.
//
// The WCNC analysis is deterministic: the converged bounds of a port are a
// pure function of (configuration, analyzer options). A cache instance is
// owned by one AnalysisEngine and therefore scoped to one configuration;
// entries are keyed by (options digest, port). Both analyzers draw on it:
// the netcalc phase skips the per-port aggregation/deviation work on a
// hit, and the trajectory phase reads its serialization caps (per-port
// queue backlogs) from the same entries instead of re-running the whole
// envelope analysis per worker.
//
// Hit/miss counters feed the engine's RunMetrics.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "netcalc/netcalc_analyzer.hpp"

namespace afdx::engine {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Baseline entries transplanted by incremental re-analysis (seed()).
  std::uint64_t seeded = 0;
  /// Entries dropped because their port turned dirty (evict()).
  std::uint64_t evicted = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Counter delta between two snapshots (later minus earlier) -- per-run
/// activity out of the engine's cumulative statistics.
inline CacheStats operator-(const CacheStats& now, const CacheStats& then) {
  return CacheStats{now.hits - then.hits, now.misses - then.misses,
                    now.seeded - then.seeded, now.evicted - then.evicted};
}

// Tripwire: options_key() below must fingerprint EVERY field of
// netcalc::Options. If this assert fires, a field was added (or resized) --
// extend the digest with the new field and update the expected size, or the
// cache will serve stale bounds computed under different options.
static_assert(sizeof(netcalc::Options) == 8,
              "netcalc::Options changed: update PortCache::options_key to "
              "mix in every field, then bump this expected size");

class PortCache {
 public:
  /// Digest of the option fields the cached bounds depend on: an FNV-1a
  /// hash over each field, byte by byte. Unlike ad-hoc bit packing this
  /// cannot silently alias two distinct option sets when a field grows or
  /// a new one is appended (see the static_assert tripwire above).
  [[nodiscard]] static std::uint64_t options_key(
      const netcalc::Options& options) noexcept {
    std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v, unsigned bytes) noexcept {
      for (unsigned i = 0; i < bytes; ++i) {
        h ^= (v >> (8 * i)) & 0xffull;
        h *= 1099511628211ull;  // FNV-1a prime
      }
    };
    mix(options.grouping ? 1u : 0u, 1);
    mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(options.max_iterations)),
        sizeof(options.max_iterations));
    return h;
  }

  /// Returns the cached bounds of (options, port) and counts a hit, or
  /// nullopt and counts a miss. Thread-safe.
  [[nodiscard]] std::optional<netcalc::PortBounds> lookup(
      std::uint64_t options_key, LinkId port) const;

  /// Stores the bounds of (options, port); the first writer wins (all
  /// writers compute identical values). Thread-safe.
  void store(std::uint64_t options_key, LinkId port,
             const netcalc::PortBounds& bounds);

  /// True when every port of `ports` is cached under `options_key` (does
  /// not touch the hit/miss counters).
  [[nodiscard]] bool covers(std::uint64_t options_key,
                            const std::vector<LinkId>& ports) const;

  /// Inserts or overwrites (options, port) with a transplanted baseline
  /// value and counts it as seeded -- incremental re-analysis uses this to
  /// pre-load the bounds of ports outside the dirty cone. Thread-safe.
  void seed(std::uint64_t options_key, LinkId port,
            const netcalc::PortBounds& bounds);

  /// Drops the listed ports under `options_key` (existing entries only are
  /// counted as evicted). Thread-safe.
  void evict(std::uint64_t options_key, const std::vector<LinkId>& ports);

  [[nodiscard]] CacheStats stats() const;
  /// Distinct (options, port) entries currently stored. Thread-safe.
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  using Key = std::pair<std::uint64_t, LinkId>;

  mutable std::mutex mu_;
  std::map<Key, netcalc::PortBounds> entries_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t seeded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace afdx::engine

// E2 -- Table I of the paper: end-to-end delay bound comparison on an
// industrial configuration. The Airbus configuration is proprietary; this
// harness regenerates the statistics on the synthetic industrial-like
// configuration (DESIGN.md, Substitutions). Paper reference values are
// printed alongside (digits reconstructed from the OCR where garbled).
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "gen/industrial.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out, const benchutil::BenchCli& cli) {
  out << "E2 / Table I: end-to-end delay bound comparison on an "
         "industrial-like configuration\n\n";

  const TrafficConfig cfg = gen::industrial_config();
  out << "configuration: " << cfg.network().switches().size()
      << " switches, " << cfg.network().end_systems().size()
      << " end systems, " << cfg.vl_count() << " VLs, "
      << cfg.all_paths().size() << " VL paths, max port utilization "
      << report::fmt(cfg.max_utilization() * 100.0, 1) << " %\n\n";

  // Route through the analysis engine (every hardware thread) and surface
  // its run metrics; bounds are bit-identical to the serial path. The run
  // doubles as the tracer overhead self-check workload.
  engine::AnalysisEngine eng(cfg, engine::Options{0});
  engine::RunResult run;
  const benchutil::OverheadReport overhead =
      benchutil::measure_run_overhead([&] { run = eng.run(); });
  analysis::Comparison c;
  c.netcalc = std::move(run.netcalc);
  c.trajectory = std::move(run.trajectory);
  c.combined = std::move(run.combined);
  const analysis::BenefitStats traj =
      analysis::benefit_stats(c.netcalc, c.trajectory);
  const analysis::BenefitStats best =
      analysis::benefit_stats(c.netcalc, c.combined);

  report::Table t({"Benefit", "Trajectory/WCNC", "Best/WCNC",
                   "paper Traj/WCNC", "paper Best/WCNC"});
  t.add_row({"Mean", report::fmt(traj.mean * 100.0) + " %",
             report::fmt(best.mean * 100.0) + " %", "~10 %", "~10 %"});
  t.add_row({"Maximum", report::fmt(traj.max * 100.0) + " %",
             report::fmt(best.max * 100.0) + " %", "24 %", "24 %"});
  t.add_row({"Minimum", report::fmt(traj.min * 100.0) + " %",
             report::fmt(best.min * 100.0) + " %", "-8.9 %", "0 %"});
  t.print(out);

  out << "\nTrajectory strictly tighter on "
      << report::fmt(traj.wins_fraction * 100.0, 1)
      << " % of VL paths (paper: ~90 %).\n"
      << "The combined bound is never worse than WCNC (minimum benefit "
      << report::fmt(best.min * 100.0) << " %).\n\n";
  run.metrics.print(out);
  out << "\n";
  benchutil::print_overhead(out, overhead);

  const auto json_path = cli.resolve_json_path("table1_industrial");
  if (json_path.has_value()) {
    benchutil::BenchJsonDoc doc = benchutil::begin_bench_json(
        *json_path, "table1_industrial", cli);
    if (doc.ok()) {
      obs::JsonWriter& w = doc.w();
      w.key("config").begin_object();
      w.field("switches", cfg.network().switches().size())
          .field("end_systems", cfg.network().end_systems().size())
          .field("vls", cfg.vl_count())
          .field("paths", cfg.all_paths().size())
          .field("max_utilization", cfg.max_utilization());
      w.end_object();
      benchutil::write_metrics_json(w, run.metrics);
      w.key("results").begin_object();
      const auto stats = [&w](const char* name,
                              const analysis::BenefitStats& b) {
        w.key(name).begin_object();
        w.field("mean_benefit_pct", b.mean * 100.0)
            .field("max_benefit_pct", b.max * 100.0)
            .field("min_benefit_pct", b.min * 100.0)
            .field("wins_fraction", b.wins_fraction);
        w.end_object();
      };
      stats("trajectory_vs_wcnc", traj);
      stats("best_vs_wcnc", best);
      w.end_object();
      obs::write_registry_json(w);
      benchutil::write_overhead_json(w, overhead);
      benchutil::finish_bench_json(doc, *json_path);
    }
  }
}

void BM_NetcalcIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(netcalc::analyze(cfg));
  }
}
BENCHMARK(BM_NetcalcIndustrial)->Unit(benchmark::kMillisecond);

void BM_TrajectoryIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trajectory::analyze(cfg));
  }
}
BENCHMARK(BM_TrajectoryIndustrial)->Unit(benchmark::kMillisecond);

void BM_GenerateIndustrial(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::industrial_config());
  }
}
BENCHMARK(BM_GenerateIndustrial)->Unit(benchmark::kMillisecond);

// Full engine run (WCNC + trajectory + combine) at 1, 2 and 4 threads. A
// fresh engine per iteration keeps the per-port cache cold, so this
// measures the parallel sharding itself.
void BM_EngineIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  const engine::Options opts{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    engine::AnalysisEngine eng(cfg, opts);
    benchmark::DoNotOptimize(eng.run());
  }
}
BENCHMARK(BM_EngineIndustrial)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Repeated runs on one engine: the per-port cache serves the WCNC phase
// and the trajectory serialization caps, measuring the memoized path a
// parameter sweep or server workload would hit.
void BM_EngineIndustrialCached(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  engine::AnalysisEngine eng(cfg, engine::Options{
      static_cast<int>(state.range(0))});
  benchmark::DoNotOptimize(eng.run());  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.run());
  }
}
BENCHMARK(BM_EngineIndustrialCached)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN_OBS(run_experiment)

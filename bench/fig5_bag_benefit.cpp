// E3 -- Figure 5 of the paper: mean benefit of the trajectory approach over
// WCNC, per BAG value, on the industrial-like configuration.
#include "analysis/comparison.hpp"
#include "bench_util.hpp"
#include "gen/industrial.hpp"
#include "report/chart.hpp"
#include "report/table.hpp"

namespace {

using namespace afdx;

void run_experiment(std::ostream& out) {
  out << "E3 / Figure 5: mean benefit of Trajectories over WCNC per BAG "
         "value\n\n";

  const TrafficConfig cfg = gen::industrial_config();
  const analysis::Comparison c = analysis::compare(cfg);
  const auto by_bag = analysis::mean_benefit_by_bag(cfg, c);

  report::Table t({"BAG (ms)", "mean benefit (%)", "paths"});
  report::Series series;
  series.name = "mean benefit of trajectory over WCNC (%)";
  std::vector<std::size_t> counts;
  for (const auto& [bag, benefit] : by_bag) {
    std::size_t n = 0;
    for (const VlPath& p : cfg.all_paths()) {
      if (cfg.vl(p.vl).bag == bag) ++n;
    }
    t.add_row({report::fmt(bag / 1000.0, 0), report::fmt(benefit * 100.0),
               std::to_string(n)});
    series.points.push_back({bag / 1000.0, benefit * 100.0});
  }
  t.print(out);
  out << "\n";
  report::line_chart(out, {series}, 64, 14, /*log_x=*/true);
  out << "\npaper shape: benefit globally increases when the BAG decreases\n"
         "(small-BAG VLs load the network more; WCNC degrades faster).\n";
}

void BM_CompareIndustrial(benchmark::State& state) {
  const TrafficConfig cfg = gen::industrial_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compare(cfg));
  }
}
BENCHMARK(BM_CompareIndustrial)->Unit(benchmark::kMillisecond);

}  // namespace

AFDX_BENCH_MAIN(run_experiment)

#include "sfa/sfa_analyzer.hpp"

#include "common/error.hpp"
#include "minplus/operations.hpp"

namespace afdx::sfa {

namespace {

using minplus::Curve;

Curve path_service(const TrafficConfig& config, const VlPath& path,
                   const Options& options,
                   const std::vector<std::map<std::uint8_t, Microseconds>>&
                       delays) {
  const Network& net = config.network();
  Curve service;
  bool first = true;
  for (LinkId l : path.links) {
    const Link& link = net.link(l);
    const Curve beta = Curve::rate_latency(link.rate, link.latency);
    const Curve cross = netcalc::port_aggregate(
        config, l, options.netcalc_options, delays, path.vl);
    Curve residual;
    try {
      residual = minplus::residual_service(beta, cross, 0.0);
    } catch (const Error&) {
      throw Error("SFA: no residual service at port " +
                  net.node(link.source).name + " -> " +
                  net.node(link.dest).name);
    }
    service = first ? residual : minplus::convolve_convex(service, residual);
    first = false;
  }
  AFDX_REQUIRE(!first, "SFA: empty path");
  return service;
}

Curve source_envelope(const TrafficConfig& config, VlId vl) {
  const VirtualLink& v = config.vl(vl);
  return Curve::affine(
      v.burst_bits() + v.rate_bits_per_us() * v.max_release_jitter,
      v.rate_bits_per_us());
}

}  // namespace

Microseconds Result::bound_for(const TrafficConfig& config, PathRef ref) const {
  const auto& paths = config.all_paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].vl == ref.vl && paths[i].dest_index == ref.dest_index) {
      return path_bounds[i];
    }
  }
  throw Error("SFA Result::bound_for: unknown path");
}

minplus::Curve end_to_end_service(const TrafficConfig& config, PathRef ref,
                                  const Options& options) {
  const netcalc::Result nc = netcalc::analyze(config, options.netcalc_options);
  return path_service(config, config.path(ref), options,
                      netcalc::delay_table(nc));
}

Result analyze(const TrafficConfig& config, const Options& options) {
  // One WCNC pass provides the upstream-delay jitter inflation for every
  // cross-traffic envelope.
  const netcalc::Result nc = netcalc::analyze(config, options.netcalc_options);
  const auto delays = netcalc::delay_table(nc);

  Result result;
  result.path_bounds.reserve(config.all_paths().size());
  for (const VlPath& path : config.all_paths()) {
    const Curve service = path_service(config, path, options, delays);
    // Store-and-forward packetization: the fluid convolution would let a
    // frame be forwarded while still being received; every hop except the
    // last re-packetizes the flow, adding up to one own-frame transmission.
    Microseconds packetization = 0.0;
    for (std::size_t k = 0; k + 1 < path.links.size(); ++k) {
      packetization += config.vl(path.vl).max_transmission_time(
          config.network().link(path.links[k]).rate);
    }
    result.path_bounds.push_back(
        minplus::horizontal_deviation(source_envelope(config, path.vl),
                                      service) +
        packetization);
  }
  return result;
}

}  // namespace afdx::sfa

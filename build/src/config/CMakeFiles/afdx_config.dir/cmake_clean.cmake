file(REMOVE_RECURSE
  "CMakeFiles/afdx_config.dir/samples.cpp.o"
  "CMakeFiles/afdx_config.dir/samples.cpp.o.d"
  "CMakeFiles/afdx_config.dir/serialization.cpp.o"
  "CMakeFiles/afdx_config.dir/serialization.cpp.o.d"
  "libafdx_config.a"
  "libafdx_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Dual-network redundancy analysis: ARINC 664 sends every frame over two
// redundant AFDX networks; the receiver's redundancy management keeps the
// first copy. This example computes, per VL path, the first-arrival latency
// bound the application sees and the worst-case skew between the two copies
// (which dimensions the receiver's redundancy-management window) -- here
// with a degraded network B whose switches have a higher technological
// latency.
//
//   $ ./redundant_network
#include <iostream>

#include "analysis/comparison.hpp"
#include "config/samples.hpp"
#include "redundancy/redundancy.hpp"
#include "report/table.hpp"

using namespace afdx;

int main() {
  // Network A: the nominal sample configuration; network B: same wiring and
  // VL set, slower switches (40 us technological latency).
  const TrafficConfig network_a = config::sample_config();
  config::SampleOptions degraded;
  degraded.switch_latency = 40.0;
  const TrafficConfig network_b = config::sample_config(degraded);

  const analysis::Comparison bounds_a = analysis::compare(network_a);
  const analysis::Comparison bounds_b = analysis::compare(network_b);
  const redundancy::Result redundancy_result = redundancy::analyze(
      network_a, bounds_a.combined, network_b, bounds_b.combined);

  report::Table t({"VL", "bound A (us)", "bound B (us)",
                   "first arrival (us)", "RM window >= (us)"});
  for (std::size_t i = 0; i < network_a.all_paths().size(); ++i) {
    t.add_row({network_a.vl(network_a.all_paths()[i].vl).name,
               report::fmt(bounds_a.combined[i]),
               report::fmt(bounds_b.combined[i]),
               report::fmt(redundancy_result.paths[i].first_arrival_bound),
               report::fmt(redundancy_result.paths[i].skew_max)});
  }
  t.print(std::cout);

  std::cout << "\nThe application-level latency guarantee follows the faster\n"
               "network; the redundancy-management window must cover the\n"
               "worst-case skew so the late legitimate copy is recognized as\n"
               "a duplicate rather than dropped.\n";
  return 0;
}

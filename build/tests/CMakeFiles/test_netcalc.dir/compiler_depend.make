# Empty compiler generated dependencies file for test_netcalc.
# This may be replaced when dependencies are built.

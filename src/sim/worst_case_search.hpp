// Worst-case schedule search: looks for the emission phasing that maximizes
// the simulated end-to-end delay of one target VL path. The result is a
// certified *lower* bound on the true worst case (it is achieved by a real
// schedule), which brackets the analytic upper bounds from below: on the
// paper's sample configuration the search reaches the trajectory bound
// exactly (272 us), proving it tight.
//
// Only the offsets of VLs interfering with the target (sharing at least one
// output port with its path) are explored; small interferer sets are swept
// exhaustively on a per-BAG grid, larger ones by coordinate descent seeded
// with the adversarial synchronization heuristic plus random restarts.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::sim {

struct SearchOptions {
  /// Offset grid resolution: each interferer's offset is swept over this
  /// many points in [0, BAG).
  int steps_per_vl = 8;
  /// Exhaustive sweep budget; above it the search switches to coordinate
  /// descent.
  std::uint64_t max_exhaustive_schedules = 20000;
  /// Random restarts of the coordinate descent.
  int random_restarts = 3;
  /// Coordinate-descent rounds per start.
  int max_rounds = 4;
  /// Seed for the random restarts.
  std::uint64_t seed = 1;
  /// Simulation horizon per schedule (0 = two periods of the largest BAG).
  Microseconds horizon = 0.0;
};

struct SearchResult {
  /// The largest delay found for the target path.
  Microseconds worst_delay = 0.0;
  /// The per-VL offsets realizing it (usable with Phasing::kExplicit).
  std::vector<Microseconds> offsets;
  /// How many schedules were simulated.
  std::uint64_t schedules_tried = 0;
  /// True when the interferer set was swept exhaustively on the grid.
  bool exhaustive = false;
};

/// Runs the search. Deterministic for fixed options.
[[nodiscard]] SearchResult worst_case_search(const TrafficConfig& config,
                                             PathRef target,
                                             const SearchOptions& options = {});

}  // namespace afdx::sim

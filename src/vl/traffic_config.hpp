// TrafficConfig: a validated AFDX network plus its static set of virtual
// links and their multicast routes. This is the single input object shared
// by the network-calculus analyzer, the trajectory analyzer and the
// simulator.
//
// Terminology used throughout the analyzers:
//   * a "node" of a VL path is an output port, i.e. a directed link;
//   * a "path" is the ordered link sequence from the source end system's
//     output port to the destination end system (one per destination);
//   * the "predecessor link" of a VL at a switch output port is the link the
//     VL's frames arrive on — flows sharing a predecessor link are
//     serialized, which is what the grouping technique exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/network.hpp"
#include "vl/virtual_link.hpp"

namespace afdx {

/// One unicast path of a (possibly multicast) VL: the ordered directed links
/// from the source end system to one destination end system.
struct VlPath {
  VlId vl = kInvalidVl;
  /// Index of the destination inside VirtualLink::destinations.
  std::uint32_t dest_index = 0;
  std::vector<LinkId> links;
};

/// Identifies one VL path globally: all analyzers report bounds per PathRef.
struct PathRef {
  VlId vl = kInvalidVl;
  std::uint32_t dest_index = 0;

  friend bool operator==(const PathRef&, const PathRef&) = default;
};

/// The static route of one VL: per-destination paths plus the derived tree
/// structure (set of crossed links, unique predecessor per crossed link).
class VlRoute {
 public:
  VlRoute() = default;

  /// Builds the route from per-destination paths; verifies that the union of
  /// the paths forms a tree rooted at the source (common prefixes must be
  /// identical links).
  VlRoute(const Network& net, const VirtualLink& vl,
          std::vector<std::vector<LinkId>> paths);

  [[nodiscard]] const std::vector<std::vector<LinkId>>& paths() const noexcept {
    return paths_;
  }

  /// All links crossed by the VL, without duplicates, in BFS-from-source
  /// order.
  [[nodiscard]] const std::vector<LinkId>& crossed_links() const noexcept {
    return crossed_links_;
  }

  /// True when the VL's tree uses link `l`.
  [[nodiscard]] bool crosses(LinkId l) const {
    return predecessor_.find(l) != predecessor_.end();
  }

  /// The link the VL's frames arrive on before being emitted on `l`;
  /// kInvalidLink when `l` is the source end system's output port.
  /// Requires crosses(l).
  [[nodiscard]] LinkId predecessor(LinkId l) const;

  /// Links of the path to destination `dest_index` strictly before link `l`.
  /// Requires that path to contain `l`.
  [[nodiscard]] std::vector<LinkId> prefix_before(std::uint32_t dest_index,
                                                  LinkId l) const;

 private:
  std::vector<std::vector<LinkId>> paths_;
  std::vector<LinkId> crossed_links_;
  std::unordered_map<LinkId, LinkId> predecessor_;
};

/// A complete, validated AFDX configuration.
class TrafficConfig {
 public:
  /// Builds routes automatically (shortest path per destination) and
  /// validates everything. Throws afdx::Error on any inconsistency.
  TrafficConfig(Network network, std::vector<VirtualLink> vls);

  /// Same, with explicit routes (routes[i][d] is the link path of VL i to
  /// its d-th destination). Pass an empty inner vector to request automatic
  /// routing for that destination.
  TrafficConfig(Network network, std::vector<VirtualLink> vls,
                std::vector<std::vector<std::vector<LinkId>>> routes);

  [[nodiscard]] const Network& network() const noexcept { return net_; }
  [[nodiscard]] std::size_t vl_count() const noexcept { return vls_.size(); }
  [[nodiscard]] const VirtualLink& vl(VlId id) const;
  [[nodiscard]] const VlRoute& route(VlId id) const;
  [[nodiscard]] std::optional<VlId> find_vl(const std::string& name) const;

  /// Every (VL, destination) pair of the configuration.
  [[nodiscard]] const std::vector<VlPath>& all_paths() const noexcept {
    return all_paths_;
  }

  /// The link sequence of one path.
  [[nodiscard]] const VlPath& path(PathRef ref) const;

  /// Ids of the VLs whose tree crosses output port `l` (deterministic order).
  [[nodiscard]] const std::vector<VlId>& vls_on_link(LinkId l) const;

  /// Long-term utilization of output port `l`:
  /// sum of (8 s_max / BAG) over crossing VLs, divided by the link rate.
  [[nodiscard]] double utilization(LinkId l) const;

  /// Highest utilization over all output ports.
  [[nodiscard]] double max_utilization() const;

  /// True when every output port has utilization <= 1 (necessary for any
  /// delay bound to exist).
  [[nodiscard]] bool stable() const;

 private:
  void build(std::vector<std::vector<std::vector<LinkId>>> routes);

  Network net_;
  std::vector<VirtualLink> vls_;
  std::vector<VlRoute> routes_;
  std::vector<VlPath> all_paths_;
  std::vector<std::vector<VlId>> link_vls_;  // indexed by LinkId
};

}  // namespace afdx

#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <limits>
#include <ostream>

#include "common/error.hpp"

namespace afdx::engine {

namespace {

using Clock = std::chrono::steady_clock;

Microseconds elapsed_us(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

void RunMetrics::print(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::fixed << std::setprecision(3);
  out << "engine: " << threads << " thread" << (threads == 1 ? "" : "s")
      << ", " << paths << " paths, " << std::setprecision(0)
      << paths_per_second << " paths/s\n"
      << std::setprecision(3) << "  wall ms: netcalc "
      << netcalc_wall_us / 1000.0 << " | trajectory "
      << trajectory_wall_us / 1000.0 << " | combine "
      << combine_wall_us / 1000.0 << " | total " << total_wall_us / 1000.0
      << "\n"
      << "  port cache: " << cache.hits << " hits / " << cache.misses
      << " misses (" << std::setprecision(1) << cache.hit_rate() * 100.0
      << " % hit rate)\n"
      << "  tasks/thread:";
  for (std::size_t n : tasks_per_thread) out << " " << n;
  out << "\n";
  out.flags(flags);
  out.precision(precision);
}

AnalysisEngine::AnalysisEngine(const TrafficConfig& config, Options options)
    : cfg_(config), pool_(ThreadPool::resolve_thread_count(options.threads)) {}

netcalc::Result AnalysisEngine::run_netcalc(const netcalc::Options& options) {
  const std::size_t n_links = cfg_.network().link_count();
  const std::uint64_t okey = PortCache::options_key(options);

  netcalc::Result result;
  result.ports.assign(n_links, netcalc::PortReport{});
  std::vector<std::map<std::uint8_t, Microseconds>> delays(n_links);

  const auto levels = netcalc::propagation_levels(cfg_);
  if (!levels.has_value()) {
    // Cyclic configuration: the fixed point is inherently sequential.
    // Serve fully-cached reruns from the per-port cache; otherwise run the
    // serial analyzer once and memoize its converged bounds.
    std::vector<LinkId> used_ports;
    for (LinkId l = 0; l < n_links; ++l) {
      if (!cfg_.vls_on_link(l).empty()) used_ports.push_back(l);
    }
    const auto rounds = iterations_.find(okey);
    if (rounds != iterations_.end() && cache_.covers(okey, used_ports)) {
      for (LinkId port : used_ports) {
        const auto bounds = cache_.lookup(okey, port);
        delays[port] = bounds->level_delays;
        result.ports[port] =
            netcalc::make_report(*bounds, cfg_.utilization(port));
      }
      result.iterations = rounds->second;
      result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
      return result;
    }
    result = netcalc::analyze(cfg_, options);
    for (LinkId port : used_ports) {
      const netcalc::PortReport& r = result.ports[port];
      cache_.store(okey, port,
                   netcalc::PortBounds{r.level_delays, r.backlog,
                                       r.queue_backlog});
    }
    iterations_[okey] = result.iterations;
    return result;
  }

  // Feed-forward: propagate level by level; ports of one level have no
  // mutual dependency, so each level is sharded across the pool. Results
  // land in per-port slots, making the pass order-independent and
  // bit-identical to the serial analyzer.
  std::vector<netcalc::PortBounds> bounds(n_links);
  for (const std::vector<LinkId>& level : *levels) {
    pool_.parallel_for(level.size(), [&](std::size_t i, int) {
      const LinkId port = level[i];
      if (auto hit = cache_.lookup(okey, port); hit.has_value()) {
        bounds[port] = std::move(*hit);
      } else {
        bounds[port] =
            netcalc::compute_port_bounds(cfg_, port, options, delays);
        cache_.store(okey, port, bounds[port]);
      }
    });
    for (LinkId port : level) {
      delays[port] = bounds[port].level_delays;
      result.ports[port] =
          netcalc::make_report(bounds[port], cfg_.utilization(port));
    }
  }
  result.iterations = 1;
  result.path_bounds = netcalc::path_bounds_from(cfg_, delays);
  return result;
}

std::vector<Microseconds> AnalysisEngine::run_trajectory(
    const trajectory::Options& options) {
  const std::vector<VlPath>& paths = cfg_.all_paths();
  std::vector<Microseconds> out(paths.size(), 0.0);

  // Serialization caps from the shared default-options WCNC run -- the
  // same envelopes Analyzer::backlog_caps() would derive per instance.
  std::optional<std::vector<Microseconds>> caps;
  if (options.serialization) {
    caps.emplace(cfg_.network().link_count(),
                 std::numeric_limits<Microseconds>::infinity());
    try {
      const netcalc::Result nc = run_netcalc(netcalc::Options{});
      for (LinkId l = 0; l < cfg_.network().link_count(); ++l) {
        if (nc.ports[l].used) {
          (*caps)[l] =
              nc.ports[l].queue_backlog / cfg_.network().link(l).rate;
        }
      }
    } catch (const Error&) {
      // The envelope analysis fails only on unstable ports, where the
      // busy period diverges anyway; fall back to uncapped, exactly like
      // the legacy analyzer.
    }
  }

  // Shards own whole VLs: paths of one VL share their prefix recursion,
  // so keeping a VL on one worker preserves the analyzer's memoization.
  std::vector<VlId> vl_order;
  std::vector<std::vector<std::size_t>> vl_paths(cfg_.vl_count());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (vl_paths[paths[i].vl].empty()) vl_order.push_back(paths[i].vl);
    vl_paths[paths[i].vl].push_back(i);
  }

  const auto shards = static_cast<std::size_t>(pool_.thread_count());
  pool_.parallel_for(shards, [&](std::size_t w, int) {
    const std::size_t begin = vl_order.size() * w / shards;
    const std::size_t end = vl_order.size() * (w + 1) / shards;
    if (begin == end) return;
    trajectory::Analyzer analyzer(cfg_, options);
    if (caps.has_value()) analyzer.set_backlog_caps(*caps);
    for (std::size_t k = begin; k < end; ++k) {
      for (std::size_t i : vl_paths[vl_order[k]]) {
        out[i] = analyzer.bound_to_link(paths[i].vl, paths[i].links.back());
      }
    }
  });
  return out;
}

RunResult AnalysisEngine::run(const netcalc::Options& nc_options,
                              const trajectory::Options& tj_options) {
  RunResult result;
  const auto t0 = Clock::now();
  result.netcalc_result = run_netcalc(nc_options);
  result.netcalc = result.netcalc_result.path_bounds;
  const auto t1 = Clock::now();
  result.trajectory = run_trajectory(tj_options);
  const auto t2 = Clock::now();
  AFDX_ASSERT(result.netcalc.size() == result.trajectory.size(),
              "engine: method results misaligned");
  result.combined.reserve(result.netcalc.size());
  for (std::size_t i = 0; i < result.netcalc.size(); ++i) {
    result.combined.push_back(
        std::min(result.netcalc[i], result.trajectory[i]));
  }
  const auto t3 = Clock::now();

  metrics_.netcalc_wall_us += elapsed_us(t0, t1);
  metrics_.trajectory_wall_us += elapsed_us(t1, t2);
  metrics_.combine_wall_us += elapsed_us(t2, t3);
  metrics_.total_wall_us += elapsed_us(t0, t3);
  metrics_.paths = result.combined.size();
  const Microseconds run_us = elapsed_us(t0, t3);
  metrics_.paths_per_second =
      run_us > 0.0 ? static_cast<double>(metrics_.paths) / (run_us * 1e-6)
                   : 0.0;
  result.metrics = metrics();
  return result;
}

netcalc::Result AnalysisEngine::netcalc_only(
    const netcalc::Options& nc_options) {
  const auto t0 = Clock::now();
  netcalc::Result result = run_netcalc(nc_options);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.netcalc_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.path_bounds.size();
  metrics_.paths_per_second =
      dt > 0.0 ? static_cast<double>(metrics_.paths) / (dt * 1e-6) : 0.0;
  return result;
}

std::vector<Microseconds> AnalysisEngine::trajectory_only(
    const trajectory::Options& tj_options) {
  const auto t0 = Clock::now();
  std::vector<Microseconds> result = run_trajectory(tj_options);
  const Microseconds dt = elapsed_us(t0, Clock::now());
  metrics_.trajectory_wall_us += dt;
  metrics_.total_wall_us += dt;
  metrics_.paths = result.size();
  metrics_.paths_per_second =
      dt > 0.0 ? static_cast<double>(result.size()) / (dt * 1e-6) : 0.0;
  return result;
}

RunMetrics AnalysisEngine::metrics() const {
  RunMetrics m = metrics_;
  m.cache = cache_.stats();
  m.threads = pool_.thread_count();
  m.tasks_per_thread = pool_.tasks_per_thread();
  return m;
}

}  // namespace afdx::engine

// Frame-level discrete-event simulator of an AFDX network.
//
// The simulator implements exactly the model the analyzers bound:
//   * every VL emits frames with its BAG as minimum (and here exact)
//     inter-arrival time, starting at a configurable offset;
//   * an output port is a FIFO queue served at the link rate;
//   * a frame entering a port's queue first pays the port's technological
//     latency; multicast frames are duplicated toward every successor link
//     of the VL's tree.
//
// Any observed end-to-end delay is therefore a *lower* bound on the true
// worst case: analytic bounds must dominate every simulation, which is the
// soundness property the test suite checks over many random phasings. The
// adversarial_offsets() helper builds a phasing that synchronizes every
// interferer on a target path, typically landing close to the analytic
// worst case.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vl/traffic_config.hpp"

namespace afdx::sim {

/// How the per-VL emission offsets are chosen.
enum class Phasing {
  /// All VLs emit their first frame at t = 0.
  kAligned,
  /// Offsets drawn uniformly in [0, BAG) from `seed`.
  kRandom,
  /// Offsets given explicitly in `offsets`.
  kExplicit,
};

struct Options {
  /// Frames are generated in [0, horizon).
  Microseconds horizon = microseconds_from_ms(400.0);
  Phasing phasing = Phasing::kAligned;
  /// Seed for Phasing::kRandom (and for random frame sizes).
  std::uint64_t seed = 1;
  /// Per-VL first-emission offsets for Phasing::kExplicit.
  std::vector<Microseconds> offsets;
  /// When true, frame sizes are drawn uniformly in [s_min, s_max] per frame;
  /// otherwise every frame has size s_max (the analytic worst case).
  bool randomize_sizes = false;
};

struct Result {
  /// Worst observed end-to-end delay per path, aligned with
  /// TrafficConfig::all_paths(). Zero when no frame of the path completed.
  std::vector<Microseconds> max_path_delay;
  /// Mean observed end-to-end delay per path (over delivered frames).
  std::vector<Microseconds> mean_path_delay;
  /// Worst observed FIFO occupancy per output port, in bits (LinkId index).
  std::vector<Bits> max_port_backlog;
  /// Total frames delivered to destination end systems.
  std::uint64_t frames_delivered = 0;

  [[nodiscard]] Microseconds max_delay_for(const TrafficConfig& config,
                                           PathRef ref) const;
};

/// Runs the simulation. Deterministic for a given (config, options).
[[nodiscard]] Result simulate(const TrafficConfig& config,
                              const Options& options = {});

/// Offsets that make every VL sharing a port with `target` deliver a frame
/// to the first shared node at the same instant as the target's first frame
/// (contention-free timing): a near-worst-case phasing for the target path.
[[nodiscard]] std::vector<Microseconds> adversarial_offsets(
    const TrafficConfig& config, PathRef target);

/// Parameters of soundness_schedules().
struct ScheduleSuiteOptions {
  /// Random phasings included, seeded seed+1 .. seed+random_schedules.
  int random_schedules = 3;
  std::uint64_t seed = 0;
  /// Every `adversarial_stride`-th path gets an adversarial phasing aimed
  /// at it (0 disables the adversarial schedules).
  std::size_t adversarial_stride = 17;
  /// Horizon applied to every schedule (0 = the simulator default).
  Microseconds horizon = 0.0;
};

/// The standard schedule battery the soundness checks simulate against a
/// configuration: the aligned phasing, `random_schedules` random phasings
/// and one adversarial phasing per sampled path. Deterministic for a given
/// (config, options); shared by the soundness test suite and the fuzzing
/// campaigns.
[[nodiscard]] std::vector<Options> soundness_schedules(
    const TrafficConfig& config, const ScheduleSuiteOptions& options = {});

}  // namespace afdx::sim

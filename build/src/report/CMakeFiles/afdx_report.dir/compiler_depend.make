# Empty compiler generated dependencies file for afdx_report.
# This may be replaced when dependencies are built.

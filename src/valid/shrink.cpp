#include "valid/shrink.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace afdx::valid {

namespace {

/// Rebuilds a TrafficConfig from mutable parts; nullopt when the candidate
/// is structurally invalid (e.g. a VL lost its last destination).
std::optional<TrafficConfig> rebuild(const Network& net,
                                     std::vector<VirtualLink> vls) {
  if (vls.empty()) return std::nullopt;
  try {
    return TrafficConfig(net, std::move(vls));
  } catch (const Error&) {
    return std::nullopt;
  }
}

class Shrinker {
 public:
  Shrinker(const TrafficConfig& config, const ShrinkOptions& options)
      : options_(options), net_(config.network()) {
    for (VlId v = 0; v < config.vl_count(); ++v) {
      vls_.push_back(config.vl(v));
    }
  }

  std::optional<ShrinkResult> run() {
    // The original must fail, otherwise there is nothing to shrink.
    auto original = violates(net_, vls_);
    if (!original.has_value()) return std::nullopt;
    witness_ = original->violations.front();
    const std::size_t original_vls = vls_.size();

    restrict_to_interferers(original->violations.front());
    for (int pass = 0; pass < options_.max_passes && !exhausted(); ++pass) {
      bool changed = false;
      changed |= drop_vl_chunks();
      changed |= prune_destinations();
      changed |= shrink_frames_and_jitter();
      if (!changed) break;
    }
    prune_topology();

    auto final_cfg = rebuild(net_, vls_);
    AFDX_ASSERT(final_cfg.has_value(), "shrink: final config must rebuild");
    ShrinkResult out{std::move(*final_cfg), witness_, original_vls,
                     vls_.size(), evaluations_};
    return out;
  }

 private:
  [[nodiscard]] bool exhausted() const {
    return evaluations_ >=
           static_cast<std::size_t>(std::max(0, options_.max_evaluations));
  }

  /// Checks one candidate; returns the result only when it still violates.
  std::optional<CheckResult> violates(const Network& net,
                                      const std::vector<VirtualLink>& vls) {
    if (exhausted()) return std::nullopt;
    auto cfg = rebuild(net, vls);
    if (!cfg.has_value()) return std::nullopt;
    ++evaluations_;
    try {
      CheckResult r = check_config(*cfg, options_.check);
      if (r.ok()) return std::nullopt;
      return r;
    } catch (const Error&) {
      // A candidate the analyzers reject (unstable, non-feed-forward) is
      // not a reproducer of the original violation.
      return std::nullopt;
    }
  }

  /// Accepts `candidate` when it still violates; updates the witness.
  bool try_accept(std::vector<VirtualLink> candidate) {
    auto r = violates(net_, candidate);
    if (!r.has_value()) return false;
    vls_ = std::move(candidate);
    witness_ = r->violations.front();
    return true;
  }

  /// Move 1: keep only the VLs sharing at least one output port with the
  /// violating path (the interferer closure) -- one evaluation, usually
  /// the single biggest reduction.
  void restrict_to_interferers(const Violation& v) {
    if (v.kind == CheckKind::kBacklogDominance) return;
    auto cfg = rebuild(net_, vls_);
    if (!cfg.has_value() || v.index >= cfg->all_paths().size()) return;
    const VlPath& path = cfg->all_paths()[v.index];
    std::set<VlId> keep;
    keep.insert(path.vl);
    for (LinkId l : path.links) {
      for (VlId other : cfg->vls_on_link(l)) keep.insert(other);
    }
    if (keep.size() == vls_.size()) return;
    std::vector<VirtualLink> candidate;
    for (VlId v2 : keep) candidate.push_back(vls_[v2]);
    (void)try_accept(std::move(candidate));
  }

  /// Move 2: ddmin-style removal -- chunks of half the VLs, then quarters,
  /// ... down to single VLs.
  bool drop_vl_chunks() {
    bool changed = false;
    for (std::size_t chunk = std::max<std::size_t>(1, vls_.size() / 2);
         chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start < vls_.size() && !exhausted();) {
        if (vls_.size() <= 1) return changed;
        std::vector<VirtualLink> candidate;
        for (std::size_t i = 0; i < vls_.size(); ++i) {
          if (i < start || i >= start + chunk) candidate.push_back(vls_[i]);
        }
        if (!candidate.empty() && try_accept(std::move(candidate))) {
          changed = true;  // same start now names the next chunk
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  /// Move 3: drop multicast destinations one at a time (prunes tree hops).
  bool prune_destinations() {
    bool changed = false;
    for (std::size_t v = 0; v < vls_.size() && !exhausted(); ++v) {
      while (vls_[v].destinations.size() > 1 && !exhausted()) {
        bool dropped = false;
        for (std::size_t d = 0; d < vls_[v].destinations.size(); ++d) {
          std::vector<VirtualLink> candidate = vls_;
          candidate[v].destinations.erase(candidate[v].destinations.begin() +
                                          static_cast<std::ptrdiff_t>(d));
          if (try_accept(std::move(candidate))) {
            dropped = true;
            changed = true;
            break;
          }
        }
        if (!dropped) break;
      }
    }
    return changed;
  }

  /// Move 4: halve s_max toward s_min and zero the release jitter.
  bool shrink_frames_and_jitter() {
    bool changed = false;
    for (std::size_t v = 0; v < vls_.size() && !exhausted(); ++v) {
      while (vls_[v].s_max > vls_[v].s_min && !exhausted()) {
        std::vector<VirtualLink> candidate = vls_;
        candidate[v].s_max =
            std::max(candidate[v].s_min, candidate[v].s_max / 2);
        if (!try_accept(std::move(candidate))) break;
        changed = true;
      }
      if (vls_[v].max_release_jitter > 0.0 && !exhausted()) {
        std::vector<VirtualLink> candidate = vls_;
        candidate[v].max_release_jitter = 0.0;
        changed |= try_accept(std::move(candidate));
      }
    }
    return changed;
  }

  /// Move 5: rebuild the network with only the nodes and cables some
  /// surviving VL route actually crosses.
  void prune_topology() {
    auto cfg = rebuild(net_, vls_);
    if (!cfg.has_value()) return;

    std::set<NodeId> used_nodes;
    std::set<std::pair<NodeId, NodeId>> used_cables;  // normalized (lo, hi)
    for (VlId v = 0; v < cfg->vl_count(); ++v) {
      for (LinkId l : cfg->route(v).crossed_links()) {
        const Link& link = net_.link(l);
        used_nodes.insert(link.source);
        used_nodes.insert(link.dest);
        used_cables.insert({std::min(link.source, link.dest),
                            std::max(link.source, link.dest)});
      }
    }
    if (used_nodes.size() == net_.node_count()) return;

    Network pruned;
    std::vector<NodeId> remap(net_.node_count(), kInvalidNode);
    for (NodeId n = 0; n < net_.node_count(); ++n) {
      if (used_nodes.find(n) == used_nodes.end()) continue;
      remap[n] = net_.is_switch(n) ? pruned.add_switch(net_.node(n).name)
                                   : pruned.add_end_system(net_.node(n).name);
    }
    for (const auto& [a, b] : used_cables) {
      const LinkId fwd = *net_.link_between(a, b);
      const LinkId bwd = *net_.link_between(b, a);
      LinkParams p;
      p.rate = net_.link(fwd).rate;
      if (net_.is_switch(a)) p.switch_latency = net_.link(fwd).latency;
      else p.end_system_latency = net_.link(fwd).latency;
      if (net_.is_switch(b)) p.switch_latency = net_.link(bwd).latency;
      else p.end_system_latency = net_.link(bwd).latency;
      pruned.connect(remap[a], remap[b], p);
    }

    std::vector<VirtualLink> remapped = vls_;
    for (VirtualLink& vl : remapped) {
      vl.source = remap[vl.source];
      for (NodeId& d : vl.destinations) d = remap[d];
    }
    auto r = violates(pruned, remapped);
    if (!r.has_value()) return;
    net_ = std::move(pruned);
    vls_ = std::move(remapped);
    witness_ = r->violations.front();
  }

  const ShrinkOptions& options_;
  Network net_;
  std::vector<VirtualLink> vls_;
  Violation witness_;
  std::size_t evaluations_ = 0;
};

}  // namespace

std::optional<ShrinkResult> shrink(const TrafficConfig& config,
                                   const ShrinkOptions& options) {
  return Shrinker(config, options).run();
}

}  // namespace afdx::valid

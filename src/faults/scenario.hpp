// Fault scenarios: which network elements are assumed failed.
//
// The paper's industrial configuration rides every VL over two redundant
// sub-networks precisely because cables, switches and end systems fail.
// A FaultScenario names one such failure hypothesis -- a set of failed
// full-duplex cables and/or nodes assumed down simultaneously -- and the
// enumerators produce the standard certification sweeps (every single
// cable, every single switch) over one configuration. Scenarios are pure
// descriptions; applying them to a TrafficConfig is degrade.hpp's job.
//
// Cables fail as a whole: a LinkId put into failed_links drags its reverse
// direction along (full-duplex cable cut). A failed node takes all its
// attached cables down implicitly when the scenario is applied.
#pragma once

#include <string>
#include <vector>

#include "vl/traffic_config.hpp"

namespace afdx::faults {

/// A set of simultaneously failed network elements.
struct FaultScenario {
  /// Human-readable label ("link e1-S1", "switch S2", a user spec, ...).
  std::string name;
  /// Failed directed links; add_failed_cable keeps both directions in sync.
  std::vector<LinkId> failed_links;
  /// Failed nodes (switches or end systems).
  std::vector<NodeId> failed_nodes;

  [[nodiscard]] bool empty() const noexcept {
    return failed_links.empty() && failed_nodes.empty();
  }
};

/// Adds the full-duplex cable containing `any_direction` (both directed
/// links) to the scenario. Duplicates are ignored.
void add_failed_cable(const Network& net, FaultScenario& scenario,
                      LinkId any_direction);

/// Parses a user scenario spec: comma-separated element specs, each
/// `link:<nodeA>-<nodeB>`, `switch:<name>` or `es:<name>` -- e.g.
/// "link:e1-S1,switch:S2" is one double-fault scenario. Throws afdx::Error
/// on unknown names, wrong node kinds or malformed syntax.
[[nodiscard]] FaultScenario scenario_from_spec(const Network& net,
                                               const std::string& spec);

/// One scenario per full-duplex cable. With used_only (default) the sweep
/// covers only cables some VL actually crosses -- failing an idle cable
/// cannot change any bound.
[[nodiscard]] std::vector<FaultScenario> single_link_scenarios(
    const TrafficConfig& config, bool used_only = true);

/// One scenario per switch. With used_only (default) the sweep covers only
/// switches some VL path traverses.
[[nodiscard]] std::vector<FaultScenario> single_switch_scenarios(
    const TrafficConfig& config, bool used_only = true);

}  // namespace afdx::faults

# Empty dependencies file for test_sfa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/incremental_design.dir/incremental_design.cpp.o"
  "CMakeFiles/incremental_design.dir/incremental_design.cpp.o.d"
  "incremental_design"
  "incremental_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/afdx_report.dir/chart.cpp.o"
  "CMakeFiles/afdx_report.dir/chart.cpp.o.d"
  "CMakeFiles/afdx_report.dir/table.cpp.o"
  "CMakeFiles/afdx_report.dir/table.cpp.o.d"
  "libafdx_report.a"
  "libafdx_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afdx_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Deterministic random number generation for the configuration generator and
// the simulator's randomized emission phasings. A thin wrapper over
// std::mt19937_64 so every experiment is reproducible from a single seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace afdx {

/// Seeded pseudo-random source. Copyable; copies continue independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty vector with a positive total weight.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Shuffles a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Underlying engine, for interop with <random> distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace afdx

file(REMOVE_RECURSE
  "libafdx_analysis.a"
)

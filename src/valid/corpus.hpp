// Corpus of minimized reproducer configurations.
//
// Every violation a campaign finds is shrunk and persisted as one
// self-contained text artifact under tests/corpus/: metadata comment lines
// (seed, campaign index, injected fault, witness description) followed by
// the configuration in the standard afdx-config format. The '#' metadata
// prefix makes every artifact directly loadable by config::load_config and
// by `afdx_analyze` / `afdx_fuzz --replay`.
//
// Replay semantics: a corpus entry must be green (zero violations) when
// checked without its fault -- that is the regression guarantee ctest
// enforces on every entry -- and must reproduce a violation when the
// recorded fault is re-applied, which proves the artifact is a genuine
// reproducer rather than an arbitrary configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "valid/validation.hpp"
#include "vl/traffic_config.hpp"

namespace afdx::valid {

struct CorpusEntry {
  /// Generator seed of the originating campaign (informational).
  std::uint64_t seed = 0;
  /// Campaign index inside its run (informational).
  std::uint64_t campaign = 0;
  /// The injected fault that produced the violation (kNone for a genuine
  /// analyzer bug -- those artifacts document a real soundness defect).
  Fault fault = Fault::kNone;
  double fault_factor = 0.5;
  /// Violation::describe() of the shrunk witness.
  std::string witness;
  /// The minimized configuration, in the afdx-config text format.
  std::string config_text;

  /// Parses config_text; throws afdx::Error on corruption.
  [[nodiscard]] TrafficConfig config() const;
};

/// Writes `entry` to `path` (metadata header + config text).
void write_corpus_file(const CorpusEntry& entry, const std::string& path);

/// Reads an artifact back; throws afdx::Error when the file is missing or
/// its config section does not parse.
[[nodiscard]] CorpusEntry read_corpus_file(const std::string& path);

/// The *.afdx files of a corpus directory, sorted by name; empty when the
/// directory does not exist.
[[nodiscard]] std::vector<std::string> list_corpus(const std::string& dir);

struct ReplayOutcome {
  /// Check without the fault -- must be green for a healthy library.
  CheckResult clean;
  /// Check with the recorded fault re-applied (absent when the entry has
  /// no fault) -- must reproduce a violation.
  std::optional<CheckResult> faulted;

  [[nodiscard]] bool regression_ok() const {
    return clean.ok() && (!faulted.has_value() || !faulted->ok());
  }
};

/// Replays one entry under `base` options (fault fields are overridden per
/// the replay semantics above).
[[nodiscard]] ReplayOutcome replay(const CorpusEntry& entry,
                                   CheckOptions base = {});

}  // namespace afdx::valid

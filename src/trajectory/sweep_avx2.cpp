// AVX2 candidate-sweep kernel. One lane per candidate instant; every lane
// walks the segment columns in the original order, so no addition is
// reassociated and every lane's value is bitwise what the scalar loop
// computes for that candidate (see sweep.hpp for the full argument).
//
// This translation unit is compiled with -mavx2 -ffp-contract=off: AVX2
// for the instructions, contraction off so the compiler cannot fuse the
// mul+add accumulation into an FMA (a fused result rounds once instead of
// twice and would break the bit-identity contract with the scalar kernel).
#include "trajectory/sweep.hpp"

#if defined(AFDX_SWEEP_AVX2)

#include <immintrin.h>

#include <algorithm>

namespace afdx::trajectory::sweep::detail {

namespace {

/// 4-lane frame_count; per lane identical to the scalar formula (vaddpd /
/// vdivpd / vroundpd-floor are the same IEEE-754 operations as their
/// scalar forms, and the window < -kEpsilon cutoff becomes a mask).
inline __m256d frame_count4(__m256d t, double a, double period) noexcept {
  const __m256d window = _mm256_add_pd(t, _mm256_set1_pd(a));
  const __m256d q = _mm256_add_pd(_mm256_div_pd(window, _mm256_set1_pd(period)),
                                  _mm256_set1_pd(1e-9));
  const __m256d n = _mm256_add_pd(_mm256_floor_pd(q), _mm256_set1_pd(1.0));
  const __m256d live =
      _mm256_cmp_pd(window, _mm256_set1_pd(-kEpsilon), _CMP_GE_OQ);
  return _mm256_and_pd(n, live);
}

}  // namespace

Microseconds run_avx2(const Columns& cols, const Microseconds* candidates,
                      std::size_t count, Microseconds consts,
                      Microseconds envelope, Microseconds best,
                      char* saturated) noexcept {
  std::size_t ci = 0;
  for (; ci + 4 <= count; ci += 4) {
    // Envelope early-exit at the batch head: candidates are ascending, so
    // once the head cannot beat `best` no later candidate can either.
    if (envelope - candidates[ci] <= best) return best;
    const __m256d t = _mm256_loadu_pd(candidates + ci);
    __m256d w = _mm256_mul_pd(frame_count4(t, cols.own_a, cols.own_period),
                              _mm256_set1_pd(cols.own_c));
    for (std::size_t idx = 0; idx < cols.nodes; ++idx) {
      const double cap = cols.node_cap[idx];
      if (saturated[idx]) {
        w = _mm256_add_pd(w, _mm256_set1_pd(cap));
        continue;
      }
      __m256d node_sum = _mm256_setzero_pd();
      const std::size_t end = cols.node_begin[idx + 1];
      for (std::size_t s = cols.node_begin[idx]; s < end; ++s) {
        node_sum = _mm256_add_pd(
            node_sum, _mm256_mul_pd(frame_count4(t, cols.a[s], cols.period[s]),
                                    _mm256_set1_pd(cols.c[s])));
      }
      const __m256d capv = _mm256_set1_pd(cap);
      const __m256d hit = _mm256_cmp_pd(node_sum, capv, _CMP_GE_OQ);
      // The scalar branch adds cap when node_sum >= cap (ties included).
      w = _mm256_add_pd(w, _mm256_blendv_pd(node_sum, capv, hit));
      // Latch from the highest lane: frame counts are nondecreasing in t,
      // so lane 3 saturating means every later candidate saturates too --
      // the point at which the scalar loop would have latched.
      if ((_mm256_movemask_pd(hit) & 0x8) != 0) saturated[idx] = 1;
    }
    alignas(32) double r[4];
    _mm256_store_pd(
        r, _mm256_sub_pd(_mm256_add_pd(w, _mm256_set1_pd(consts)), t));
    // Ascending-lane fold == the scalar candidate-order fold.
    for (int lane = 0; lane < 4; ++lane) best = std::max(best, r[lane]);
  }
  // Remainder tail (< 4 candidates): the shared scalar kernel, compiled in
  // sweep.cpp with the project-default (non-AVX) flags.
  return run_scalar(cols, candidates, ci, count, consts, envelope, best,
                    saturated);
}

}  // namespace afdx::trajectory::sweep::detail

#endif  // AFDX_SWEEP_AVX2
